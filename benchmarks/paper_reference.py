"""Reference values from the paper, printed next to measured results.

The reproduction runs on a simulated substrate, so absolute magnitudes are
not expected to match; shapes, orderings and crossovers are.  Each bench
prints the paper number it targets so EXPERIMENTS.md can record both.
"""

# Table 1 (dataset sizes on mainnet; ours scale with the simulated world).
PAPER_TABLE1 = {
    "blocks": 1_413_209,
    "transactions": 210_695_337,
    "logs": 465_863_321,
    "traces": 1_033_519_365,
    "mempool arrival times": 910_577_701,
    "relay data entries": 427_443_787,
    "OFAC addresses": 134,
}

# Figure 3: average daily shares of user payments.
PAPER_FIG3 = {"base fee": 0.723, "priority fee": 0.184, "direct transfers": 0.093}

# Figure 4: PBS adoption.
PAPER_FIG4 = {
    "merge day": 0.20,
    "by 3 Nov 2022": 0.85,
    "steady range": (0.85, 0.94),
}

# Table 4 (left): share of promised value delivered per relay.
PAPER_TABLE4_DELIVERED = {
    "Aestus": 1.0000,
    "Blocknative": 0.99982,
    "bloXroute (E)": 0.99890,
    "bloXroute (M)": 0.99989,
    "bloXroute (R)": 0.99989,
    "Eden": 0.93785,
    "Flashbots": 0.99993,
    "GnosisDAO": 0.99994,
    "Manifold": 0.19863,
    "Relayooor": 0.99968,
    "UltraSound": 0.99989,
}

PAPER_TABLE4_OVERPROMISED = {
    "Aestus": 0.00031,
    "Blocknative": 0.03553,
    "bloXroute (E)": 0.04449,
    "bloXroute (M)": 0.02724,
    "bloXroute (R)": 0.00114,
    "Eden": 0.00048,
    "Flashbots": 0.00033,
    "GnosisDAO": 0.00894,
    "Manifold": 0.06880,
    "Relayooor": 0.02096,
    "UltraSound": 0.00953,
}

PAPER_TABLE4_SANCTIONED_SHARE = {
    "Aestus": 0.01082,
    "Blocknative": 0.01808,
    "bloXroute (E)": 0.05420,
    "bloXroute (M)": 0.05375,
    "bloXroute (R)": 0.00825,
    "Eden": 0.00324,
    "Flashbots": 0.00211,
    "GnosisDAO": 0.02956,
    "Manifold": 0.14357,
    "Relayooor": 0.05658,
    "UltraSound": 0.03309,
}

# Figure 6: HHI ranges.
PAPER_FIG6 = {
    "relay HHI range": (0.19, 0.80),
    "builder HHI range": (0.13, 0.67),
    "builder HHI mean": 0.21,
}

# Section 5.4 / Figures 15-16, 20-22.
PAPER_MEV = {
    "PBS MEV value share": 0.144,
    "sandwiches total": 1_329_368,
    "cyclic arbitrage total": 871_560,
    "liquidations total": 4_173,
    "arb per PBS block": 0.72,
    "arb per non-PBS block": 0.20,
    "liq per PBS block": 0.02,
    "liq per non-PBS block": 0.003,
    "bloXroute (E) sandwiches": 2_002,
}

# Section 6 / Table 4 right, Figure 17-18.
PAPER_CENSORSHIP = {
    "PBS sanctioned share": 0.0171,
    "non-PBS vs PBS factor": 2.0,
    "compliant share early": 0.80,
    "compliant share late": 0.45,
}

# Section 4: multi-relay blocks and builder counts.
PAPER_LANDSCAPE = {
    "multi-relay share": 0.05,
    "unique builders": 133,
    "flashbots relay share late": 0.23,
    "bloxroute m overall share": 0.20,
}


def compare_line(label: str, measured, paper) -> str:
    """One formatted measured-vs-paper line for bench output."""
    if isinstance(measured, float) and isinstance(paper, float):
        return f"  {label:42s} measured={measured:10.4f}  paper={paper:10.4f}"
    return f"  {label:42s} measured={measured!s:>12}  paper={paper!s:>12}"
