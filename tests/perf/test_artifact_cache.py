"""Unit tests for the persistent study-dataset artifact cache."""

from __future__ import annotations

import dataclasses

from repro.perf import artifacts
from repro.perf.artifacts import (
    config_content_hash,
    load_study_artifact,
    save_study_artifact,
)
from repro.simulation.config import SimulationConfig


def _config(**overrides) -> SimulationConfig:
    base = {"seed": 7, "num_days": 3, "blocks_per_day": 4}
    base.update(overrides)
    return SimulationConfig(**base)


class TestConfigHash:
    def test_stable_across_instances(self):
        assert config_content_hash(_config()) == config_content_hash(_config())

    def test_sensitive_to_every_field(self):
        base = config_content_hash(_config())
        assert config_content_hash(_config(seed=8)) != base
        assert config_content_hash(_config(build_workers=4)) != base
        changed = dataclasses.replace(_config(), num_days=5)
        assert config_content_hash(changed) != base


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        dataset = {"daily": [1, 2, 3], "label": "fake-study"}
        path = save_study_artifact(_config(), dataset, cache_dir=tmp_path)
        assert path.exists()
        assert load_study_artifact(_config(), cache_dir=tmp_path) == dataset

    def test_wrong_config_misses(self, tmp_path):
        save_study_artifact(_config(), {"x": 1}, cache_dir=tmp_path)
        assert load_study_artifact(_config(seed=8), cache_dir=tmp_path) is None

    def test_empty_cache_misses(self, tmp_path):
        assert load_study_artifact(_config(), cache_dir=tmp_path) is None

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        path = save_study_artifact(_config(), {"x": 1}, cache_dir=tmp_path)
        path.write_bytes(b"not a pickle")
        assert load_study_artifact(_config(), cache_dir=tmp_path) is None

    def test_format_bump_invalidates(self, tmp_path, monkeypatch):
        save_study_artifact(_config(), {"x": 1}, cache_dir=tmp_path)
        monkeypatch.setattr(
            artifacts, "ARTIFACT_FORMAT", artifacts.ARTIFACT_FORMAT + 1
        )
        assert load_study_artifact(_config(), cache_dir=tmp_path) is None
