"""Tests for CSV/JSON dataset export."""

import json
import pathlib

import pytest

from repro.datasets.storage import (
    BLOCKS_CSV,
    DELIVERIES_CSV,
    INVENTORY_JSON,
    MEV_CSV,
    export_study_dataset,
    load_block_rows,
)
from repro.errors import DataError


@pytest.fixture(scope="module")
def exported(small_dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("export")
    written = export_study_dataset(small_dataset, directory)
    return directory, written


class TestExport:
    def test_all_files_written(self, exported):
        directory, written = exported
        assert set(written) == {
            BLOCKS_CSV, DELIVERIES_CSV, MEV_CSV, INVENTORY_JSON,
        }
        for path in written.values():
            assert pathlib.Path(path).exists()

    def test_block_rows_round_trip(self, exported, small_dataset):
        directory, _ = exported
        rows = load_block_rows(directory)
        assert len(rows) == len(small_dataset.blocks)
        first = rows[0]
        obs = small_dataset.block(int(first["number"]))
        assert first["block_hash"] == obs.block_hash
        assert int(first["is_pbs"]) == int(obs.is_pbs)
        assert int(first["tx_count"]) == obs.tx_count

    def test_inventory_json(self, exported, small_dataset):
        directory, _ = exported
        payload = json.loads((directory / INVENTORY_JSON).read_text())
        assert payload["blocks"] == small_dataset.inventory.blocks
        assert payload["ofac_addresses"] == 134

    def test_deliveries_cover_relay_data(self, exported, small_dataset):
        directory, _ = exported
        lines = (directory / DELIVERIES_CSV).read_text().strip().splitlines()
        expected = sum(
            len(relay.data.get_payloads_delivered())
            for relay in small_dataset.relays.values()
        )
        assert len(lines) - 1 == expected  # minus header

    def test_mev_rows(self, exported, small_dataset):
        directory, _ = exported
        lines = (directory / MEV_CSV).read_text().strip().splitlines()
        assert len(lines) - 1 == len(small_dataset.mev)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(DataError):
            load_block_rows(tmp_path / "nope")
