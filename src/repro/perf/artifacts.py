"""Persistent study-dataset artifacts keyed by a config content hash.

Building and running a benchmark-scale world takes minutes; the collected
:class:`~repro.datasets.collector.StudyDataset` it yields is a pure
function of the :class:`~repro.simulation.config.SimulationConfig`.  This
module caches that dataset on disk keyed by a content hash of the config,
so benchmark sessions whose config is unchanged skip the simulation
entirely (``benchmarks/conftest.py`` wires this up).

Invalidation rule: the cache key is a hash of *every* config field, so any
config change — including the seed — produces a new artifact file.  Code
changes are guarded by ``ARTIFACT_FORMAT``: bump it whenever simulation
semantics change so stale artifacts from older code are ignored.  Delete
the cache directory at any time; it will simply be rebuilt.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any

#: Bump when simulation semantics change; old artifacts become unreadable.
ARTIFACT_FORMAT = 1

_CACHE_DIR_ENV = "REPRO_ARTIFACT_CACHE"


def config_content_hash(config: Any) -> str:
    """A stable hex hash of every field of a ``SimulationConfig``.

    Fields are serialized by name in sorted order, so two configs hash
    equal iff every field is equal, and dataclass field *ordering* changes
    do not invalidate artifacts (adding, removing or changing a field
    does).
    """
    payload = {
        field.name: getattr(config, field.name)
        for field in dataclasses.fields(config)
    }
    encoded = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(encoded.encode()).hexdigest()[:32]


def default_cache_dir() -> Path:
    """``$REPRO_ARTIFACT_CACHE`` if set, else ``benchmarks/.artifact_cache``."""
    override = os.environ.get(_CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "benchmarks" / ".artifact_cache"


def _artifact_path(cache_dir: Path, config_hash: str) -> Path:
    return cache_dir / f"study-{config_hash}.pkl"


def save_study_artifact(
    config: Any, dataset: Any, cache_dir: Path | None = None
) -> Path:
    """Pickle ``dataset`` under the config's content hash; returns the path."""
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    config_hash = config_content_hash(config)
    path = _artifact_path(cache_dir, config_hash)
    payload = {
        "format": ARTIFACT_FORMAT,
        "config_hash": config_hash,
        "dataset": dataset,
    }
    tmp_path = path.with_suffix(".tmp")
    with open(tmp_path, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp_path, path)  # atomic: concurrent readers never see halves
    return path


def load_study_artifact(config: Any, cache_dir: Path | None = None) -> Any:
    """The cached dataset for ``config``, or None on miss/stale/corrupt."""
    cache_dir = cache_dir or default_cache_dir()
    config_hash = config_content_hash(config)
    path = _artifact_path(cache_dir, config_hash)
    if not path.exists():
        return None
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception:
        return None  # corrupt or unreadable: treat as a miss
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != ARTIFACT_FORMAT:
        return None
    if payload.get("config_hash") != config_hash:
        return None
    return payload.get("dataset")
