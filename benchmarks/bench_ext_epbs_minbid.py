"""Extension benches: the paper's forward-looking discussion, measured.

* Enshrined PBS (Section 8): value delivery enforced in-protocol — the
  Table 4 trust gap disappears, censorship does not.
* MEV-Boost min-bid: the post-study censorship mitigation — proposers
  refuse small bids and build locally, trading profit for neutrality.
"""

from repro.analysis.censorship import overall_sanctioned_shares
from repro.analysis.report import render_table
from repro.datasets import collect_study_dataset
from repro.simulation import SimulationConfig, build_world

from reporting import emit


def _world(**overrides):
    config = SimulationConfig(
        seed=19,
        num_days=60,
        blocks_per_day=10,
        num_validators=300,
        num_users=220,
        num_long_tail_builders=20,
        network_nodes=32,
        max_active_builders_per_slot=6,
        **overrides,
    )
    return build_world(config).run()


def test_ext_enshrined_pbs(benchmark):
    world = benchmark.pedantic(
        lambda: _world(use_enshrined_pbs=True), rounds=1, iterations=1
    )
    dataset = collect_study_dataset(world)

    epbs_records = [r for r in world.slot_records if r.mode == "epbs"]
    shortfalls = sum(
        1 for r in epbs_records if r.payment_wei < r.claimed_wei
    )
    relay_entries = sum(
        relay.data.total_entries() for relay in world.relays.values()
    )
    shares = overall_sanctioned_shares(dataset)
    emit(
        "ext_epbs",
        render_table(
            ["metric", "value"],
            [
                ["ePBS blocks", len(epbs_records)],
                ["bid shortfalls (enforced to zero)", shortfalls],
                ["relay data entries", relay_entries],
                ["sanctioned share, builder path", round(shares["PBS"], 4)],
                ["sanctioned share, local path", round(shares["non-PBS"], 4)],
            ],
            title="enshrined-PBS counterfactual",
        ),
    )
    # Value-delivery trust is solved by construction...
    assert epbs_records
    assert shortfalls == 0
    assert relay_entries == 0
    # ...but censorship is NOT: sanctioned transactions keep landing in
    # builder-produced blocks (in an enshrined world nearly every block is
    # builder-built, so the local-path share is degenerate and the
    # builder-path share is the meaningful measure).
    assert shares["PBS"] > 0


def test_ext_min_bid(benchmark):
    baseline = benchmark.pedantic(_world, rounds=1, iterations=1)
    guarded = _world(min_bid_eth=0.05)

    def pbs_share(world):
        records = world.slot_records
        return sum(1 for r in records if r.mode == "pbs") / len(records)

    base_share = pbs_share(baseline)
    guarded_share = pbs_share(guarded)
    base_sanc = overall_sanctioned_shares(collect_study_dataset(baseline))
    guarded_sanc = overall_sanctioned_shares(collect_study_dataset(guarded))
    emit(
        "ext_min_bid",
        render_table(
            ["variant", "PBS share", "PBS sanctioned", "local sanctioned"],
            [
                ["min-bid off", round(base_share, 3),
                 round(base_sanc["PBS"], 4), round(base_sanc["non-PBS"], 4)],
                ["min-bid 0.05 ETH", round(guarded_share, 3),
                 round(guarded_sanc["PBS"], 4),
                 round(guarded_sanc["non-PBS"], 4)],
            ],
            title="MEV-Boost min-bid mitigation",
        ),
    )
    # Min-bid shifts production from PBS to local building — the intended
    # censorship-resistance trade-off.
    assert guarded_share < base_share
