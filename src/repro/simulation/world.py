"""The world simulator: a slot-by-slot post-merge Ethereum with PBS.

``build_world(config)`` wires the whole landscape; ``World.run()`` advances
it through the study window, producing the raw material the paper's
pipeline measures: a canonical chain with receipts and traces, beacon
records, relay data-API stores, mempool observations, and the sanctions
timeline.
"""

from __future__ import annotations

import datetime
import hashlib
from dataclasses import dataclass

import numpy as np

from ..beacon.builders import (
    ACTIVATION_DELAY_DAYS,
    MIN_BUILDER_DEPOSIT_WEI,
    BuilderRegistry,
    EpbsLedger,
)
from ..beacon.chain import BeaconBlockRecord, BeaconChain
from ..beacon.rewards import RewardLedger
from ..beacon.schedule import ProposerSchedule
from ..beacon.validator import Validator, ValidatorRegistry
from ..chain.chain import Chain
from ..chain.exec_cache import ExecutionCache
from ..chain.execution import ExecutionContext, ExecutionEngine
from ..chain.state import WorldState
from ..chain.transaction import (
    EthTransfer,
    ORIGIN_PRIVATE,
    ORIGIN_PUBLIC,
    SwapExact,
    TokenTransfer,
    Transaction,
    TransactionFactory,
)
from ..constants import (
    MAX_BLOCK_GAS,
    MERGE_BLOCK_NUMBER,
    MERGE_DATE,
    MERGE_SLOT,
)
from ..core.auction import SlotAuction, SlotOutcome
from ..core.builder import BlockBuilder
from ..core.context import SlotContext
from ..core.proposer import LocalBlockBuilder
from ..core.relay import Relay
from ..defi.registry import DefiProtocols
from ..mev.bundles import Bundle
from ..mev.liquidation import plan_liquidations
from ..mev.arbitrage import find_arbitrage_cycles, plan_cycle_arbitrage
from ..mev.searcher import Searcher, SlotView
from ..mempool.network import P2PNetwork
from ..mempool.observer import ObservationStore
from ..mempool.pool import SharedMempool
from ..mempool.private import PrivateOrderFlow
from ..perf.metrics import PerfRegistry
from ..perf.parallel import BuildWorkerPool
from ..sanctions.ofac import SanctionsList, build_ofac_timeline
from ..types import Address, derive_address, ether, gwei
from . import calibration
from .config import SimulationConfig
from .entities import (
    build_builders,
    build_defi,
    build_relays,
    build_searchers,
    build_validators,
    long_tail_start_day,
)
from .events import Timeline, default_timeline
from .segments import SEGMENT_STREAM_SALT, SegmentSpec

_SECONDS_PER_DAY = 86_400
_MEMPOOL_TTL_SECONDS = 0.75 * _SECONDS_PER_DAY
_GENESIS_TIME = 1_663_224_179  # merge timestamp (2022-09-15 06:42:59 UTC)

# Candidate tokens for user ERC-20 transfers.  A pre-built array keeps
# ``rng.choice`` from re-converting the list on every generated transaction
# (the draw sequence is identical either way).
_TRANSFER_TOKENS = np.array(["USDC", "DAI", "USDT", "WBTC", "ALT1", "ALT2"])


@dataclass
class SlotRecord:
    """Ground-truth record of one proposed slot (tests and examples only).

    The measurement pipeline never reads these; it works off the collected
    datasets exactly as the paper does.
    """

    slot: int
    day: int
    # -1 when no execution payload became canonical this slot (ePBS
    # withheld/empty slots have a consensus record but no block).
    block_number: int
    mode: str
    winning_builder: str | None
    delivering_relays: tuple[str, ...]
    payment_wei: int
    claimed_wei: int
    # ePBS escrow settlement enforcing the committed bid (0 elsewhere).
    settled_wei: int = 0


class World:
    """A fully wired simulated world; call :meth:`run` to advance it.

    With ``segment`` given, the world is the epoch segment's independent
    sub-simulation: it covers only ``[segment.day_start, segment.day_end)``
    with absolute day/slot/block numbering, shares populations (derived
    from the root seed alone) with every sibling segment, and draws its
    dynamic randomness from streams derived from ``(seed, segment.index)``
    so segments never consume each other's draws.  Without ``segment``
    (or with the degenerate full-range segment) the world is bit-identical
    to the legacy unsegmented run.
    """

    def __init__(
        self,
        config: SimulationConfig,
        timeline: Timeline | None = None,
        segment: "SegmentSpec | None" = None,
    ):
        self.config = config
        self.timeline = timeline or default_timeline()
        if segment is not None and segment.covers_all:
            segment = None  # degenerate plan: take the legacy path exactly
        self.segment = segment
        self._day_start = segment.day_start if segment is not None else 0
        self._day_end = (
            segment.day_end if segment is not None else config.num_days
        )
        self._slot_start = self._day_start * config.blocks_per_day
        seed_seq = np.random.SeedSequence(config.seed)
        (
            seq_network,
            seq_entities,
            seq_oracle,
            seq_txgen,
            seq_searchers,
            seq_auction,
            seq_lending,
        ) = seed_seq.spawn(7)
        if segment is not None:
            # Per-segment dynamic streams: derived from the root seed and
            # the segment index only, so any process can run any segment
            # and draw the same sequence.  Population streams (network,
            # entities) stay root-derived: every segment sees the same
            # actors.
            (
                seq_oracle,
                seq_txgen,
                seq_searchers,
                seq_auction,
                seq_lending,
            ) = np.random.SeedSequence(
                [config.seed, SEGMENT_STREAM_SALT, segment.index]
            ).spawn(5)
        self._rng_oracle = np.random.default_rng(seq_oracle)
        self._rng_txgen = np.random.default_rng(seq_txgen)
        self._rng_searchers = np.random.default_rng(seq_searchers)
        self._rng_auction = np.random.default_rng(seq_auction)
        self._rng_lending = np.random.default_rng(seq_lending)
        rng_network = np.random.default_rng(seq_network)
        rng_entities = np.random.default_rng(seq_entities)

        # Substrates.
        self.network = P2PNetwork(rng_network, node_count=config.network_nodes)
        self.mempool = SharedMempool(self.network, ttl_seconds=_MEMPOOL_TTL_SECONDS)
        self.observations = ObservationStore.with_default_observers(self.network)
        self.private_flow = PrivateOrderFlow()

        self.defi: DefiProtocols = build_defi(config)
        # The baseline mode for perf comparisons: fork every protocol
        # component up front instead of on first touch.
        self.defi.fork_eagerly = config.eager_protocol_forks
        self.oracle = self.defi.oracle
        self.state = WorldState()
        self.engine = ExecutionEngine(fast_single_action=config.engine_fast_path)
        self.canonical_ctx = ExecutionContext(state=self.state, protocols=self.defi)
        # Segment block numbering derives from the slot offset: segments
        # are independent by construction, so segment N cannot know how
        # many slots segments < N missed.  Numbers stay globally unique
        # and ordered across the merged run.
        self.chain = Chain(first_block_number=MERGE_BLOCK_NUMBER + self._slot_start)
        self.tx_factory = TransactionFactory()

        # Performance machinery (never changes simulated outcomes).
        self.perf = PerfRegistry()
        self.worker_pool = (
            BuildWorkerPool(config.build_workers)
            if config.build_workers > 1
            else None
        )

        # Consensus layer.
        self.validators: ValidatorRegistry
        self.validators, self._profiles, self._adoption = build_validators(
            config, rng_entities
        )
        self.schedule = ProposerSchedule(self.validators, seed=config.seed)
        self.beacon = BeaconChain()
        self.rewards = RewardLedger()

        # PBS layer.
        self.relays: dict[str, Relay] = build_relays(config, self.timeline)
        self.builders: dict[str, BlockBuilder] = build_builders(
            config, self.timeline, rng_entities, config.network_nodes
        )
        self.searchers: list[Searcher] = build_searchers(rng_entities)
        self.local_builder = LocalBlockBuilder(
            mempool_node=int(rng_entities.integers(0, config.network_nodes)),
            # Hobbyist nodes snapshot the mempool early and miss the most
            # recent quarter of arrivals (smaller, emptier non-PBS blocks).
            snapshot_lead_seconds=0.25 * config.seconds_per_simulated_slot,
        )
        # Long-tail builder start days (needed for the ePBS deposit
        # schedule below, and the daily flow weights).
        self._tail_names = sorted(
            name for name in self.builders if name.startswith("builder-")
        )
        self._tail_start = {
            name: long_tail_start_day(index, config.num_days)
            for index, name in enumerate(self._tail_names)
        }

        # Regime wiring: who runs the per-slot auction.
        self.builder_registry: BuilderRegistry | None = None
        self.epbs_ledger: EpbsLedger | None = None
        if config.regime == "epbs":
            from ..core.epbs import EnshrinedPBSAuction

            self.epbs_ledger = EpbsLedger()
            self.builder_registry = BuilderRegistry(
                self.state, ledger=self.epbs_ledger
            )
            self._schedule_builder_deposits()
            self.auction = EnshrinedPBSAuction(
                self.builders,
                self.local_builder,
                registry=self.builder_registry,
                ledger=self.epbs_ledger,
                validators=self.validators,
                seed=config.seed,
            )
        elif config.regime == "local":
            # Every proposer self-builds: no relays, no builder market.
            self.auction = SlotAuction({}, {}, self.local_builder)
        else:
            self.auction = SlotAuction(
                self.relays, self.builders, self.local_builder
            )

        # Sanctions.
        self.sanctions: SanctionsList = build_ofac_timeline()
        self._sanctioned_pool: list[Address] = [
            entry.address for entry in self.sanctions.entries()
        ]

        # Populations.
        self.users = [
            derive_address("user", index) for index in range(config.num_users)
        ]
        self._binance_hot_wallet = derive_address("exchange", "binance-hot")
        self._ankr_deposit = derive_address("exchange", "ankr-deposit")
        self._borrower_counter = 0
        # Swap-eligible pool ids; built on first use (pools are static).
        self._swap_pool_ids: np.ndarray | None = None

        # Ground truth for tests.
        self.slot_records: list[SlotRecord] = []
        self._registered_relays: set[tuple[int, str]] = set()
        self._has_run = False

        self._fund_accounts()
        self._seed_lending_positions(config.num_lending_positions)

        # Segment worlds fast-forward the builder registry through the
        # days before their window (deposits and churned activations are
        # pure functions of the schedule and the day), with ledger
        # recording suppressed so each segment publishes only its own
        # window's events.
        if self.builder_registry is not None and self._day_start > 0:
            self.builder_registry.ledger = None
            for day in range(0, self._day_start):
                self.builder_registry.process_day(day)
            self.builder_registry.ledger = self.epbs_ledger

    # ------------------------------------------------------------------
    # Setup helpers
    # ------------------------------------------------------------------

    def _schedule_builder_deposits(self) -> None:
        """The ePBS deposit schedule: who stakes, and when.

        The named roster is the genesis builder set (deposits escrow on
        day 0, activation is immediate).  Long-tail builders deposit
        ahead of their market-entry day so the activation-queue delay
        lands them in the active set roughly when their order flow
        starts; the churn limit still rate-limits bursts.  The schedule
        is a pure function of the config, so every segment derives the
        same one.
        """
        registry = self.builder_registry
        assert registry is not None
        for name, builder in self.builders.items():
            if name.startswith("builder-"):
                continue
            registry.submit_deposit(
                name,
                pubkey=builder.pubkeys[0],
                address=builder.address,
                amount_wei=MIN_BUILDER_DEPOSIT_WEI,
                day=0,
                genesis=True,
            )
        for name in self._tail_names:
            builder = self.builders[name]
            deposit_day = max(0, self._tail_start[name] - ACTIVATION_DELAY_DAYS)
            registry.submit_deposit(
                name,
                pubkey=builder.pubkeys[0],
                address=builder.address,
                amount_wei=MIN_BUILDER_DEPOSIT_WEI,
                day=deposit_day,
            )

    def _fund_accounts(self) -> None:
        tokens = self.defi.tokens
        for user in self.users:
            self.state.mint(user, ether(40))
            tokens.mint("WETH", user, 40 * 10**18)
            tokens.mint("USDC", user, 50_000 * 10**6)
            tokens.mint("DAI", user, 50_000 * 10**18)
            tokens.mint("USDT", user, 20_000 * 10**6)
            tokens.mint("WBTC", user, 2 * 10**8)
            tokens.mint("ALT1", user, 800 * 10**18)
            tokens.mint("ALT2", user, 3_000 * 10**18)
            tokens.mint("TRON", user, 200_000 * 10**18)
        for searcher in self.searchers:
            self.state.mint(searcher.address, ether(2_000))
            tokens.mint("WETH", searcher.address, 20_000 * 10**18)
            tokens.mint("USDC", searcher.address, 10_000_000 * 10**6)
            tokens.mint("DAI", searcher.address, 10_000_000 * 10**18)
            tokens.mint("USDT", searcher.address, 5_000_000 * 10**6)
            tokens.mint("WBTC", searcher.address, 200 * 10**8)
        for builder in self.builders.values():
            self.state.mint(builder.address, ether(4_000))
        for address in self._sanctioned_pool:
            self.state.mint(address, ether(300))
            tokens.mint("USDC", address, 500_000 * 10**6)
            tokens.mint("USDT", address, 300_000 * 10**6)
            tokens.mint("DAI", address, 300_000 * 10**18)
        self.state.mint(self._binance_hot_wallet, ether(50_000))
        # A public keeper account used by non-PBS-era style mempool bots.
        self._public_bot = derive_address("bot", "public-keeper")
        self.state.mint(self._public_bot, ether(500))
        tokens.mint("WETH", self._public_bot, 5_000 * 10**18)
        tokens.mint("USDC", self._public_bot, 2_000_000 * 10**6)
        tokens.mint("DAI", self._public_bot, 2_000_000 * 10**18)

    def _top_up_users(self) -> None:
        """Replenish user inventories daily (exchange withdrawals).

        Without inflow, heavy sellers run out of WETH after a few weeks and
        the victim-swap supply — and with it all MEV — dries up, which the
        real market does not do.
        """
        tokens = self.defi.tokens
        floor_weth = 20 * 10**18
        for user in self.users:
            held = tokens.balance_of("WETH", user)
            if held < floor_weth:
                tokens.mint("WETH", user, 40 * 10**18 - held)
            if self.state.balance_of(user) < ether(10):
                self.state.mint(user, ether(30))
            if tokens.balance_of("USDC", user) < 10_000 * 10**6:
                tokens.mint("USDC", user, 40_000 * 10**6)
            if tokens.balance_of("DAI", user) < 10_000 * 10**18:
                tokens.mint("DAI", user, 40_000 * 10**18)
        for searcher in self.searchers:
            # Professional searchers rebalance their gas/tip inventory.
            if self.state.balance_of(searcher.address) < ether(500):
                self.state.mint(searcher.address, ether(2_000))
        if self.state.balance_of(self._public_bot) < ether(100):
            self.state.mint(self._public_bot, ether(400))

    def _seed_lending_positions(self, count: int) -> None:
        for _ in range(count):
            self._open_lending_position()

    def _open_lending_position(self) -> None:
        rng = self._rng_lending
        market_id = "aave" if rng.random() < 0.6 else "compound"
        market = self.defi.markets[market_id]
        borrower = derive_address("borrower", self._borrower_counter)
        self._borrower_counter += 1
        collateral_token = str(rng.choice(["WBTC", "WETH", "ALT1"]))
        debt_token = str(rng.choice(["USDC", "DAI"]))
        collateral_value_eth = float(rng.uniform(4.0, 40.0))
        decimals_c = self.defi.tokens.token(collateral_token).decimals
        decimals_d = self.defi.tokens.token(debt_token).decimals
        price_c = self.oracle.price_in_eth(collateral_token)
        price_d = self.oracle.price_in_eth(debt_token)
        collateral_amount = int(collateral_value_eth / price_c * 10**decimals_c)
        # Health factor between ~1.02 and ~1.35 at opening.
        target_health = float(rng.uniform(1.12, 1.55))
        debt_value_eth = (
            collateral_value_eth * market.liquidation_threshold / target_health
        )
        debt_amount = int(debt_value_eth / price_d * 10**decimals_d)
        if collateral_amount <= 0 or debt_amount <= 0:
            return
        market.open_position(
            borrower, collateral_token, collateral_amount, debt_token, debt_amount
        )

    # ------------------------------------------------------------------
    # Daily updates
    # ------------------------------------------------------------------

    def _advance_day(self, day: int) -> None:
        date = MERGE_DATE + datetime.timedelta(days=day)
        if day > 0:
            self.oracle.advance_day(
                self._rng_oracle,
                volatility=0.028,
                volatility_multipliers=self.timeline.oracle_vol_multipliers(day),
            )
            if day == self.timeline.usdc_depeg_day:
                self.oracle.set_price("USDC", 0.88)
            if day == self.timeline.usdc_depeg_day + 2:
                self.oracle.set_price("USDC", 0.99)
        for relay in self.relays.values():
            relay.refresh_sanctions_view(self.sanctions, date)
        self._top_up_users()
        refill = self.config.lending_refill_per_day
        if refill < 0:
            refill = 0.022 * self.config.blocks_per_day
        whole = int(refill)
        for _ in range(whole):
            self._open_lending_position()
        if self._rng_lending.random() < refill - whole:
            self._open_lending_position()
        # The builder registry processes the day's deposits/activations.
        if self.builder_registry is not None:
            self.builder_registry.process_day(day)
        # Refresh validator MEV-Boost configurations.  Only the mev_boost
        # regime has MEV-Boost at all: under ePBS the protocol runs the
        # auction for every proposer, and under local everyone self-builds.
        if self.config.regime == "mev_boost":
            for validator in self.validators:
                adopted = self._adoption[validator.index] <= day
                if not adopted:
                    validator.disable_mev_boost()
                    continue
                menu = calibration.relay_menu(self._profiles[validator.index], day)
                if menu:
                    validator.configure_mev_boost(menu)
                    validator.min_bid_wei = ether(self.config.min_bid_eth)
                else:
                    validator.disable_mev_boost()
        else:
            for validator in self.validators:
                validator.disable_mev_boost()
        # Builder relay routing and activity for the day.
        self._day_flow_weights = {
            name: calibration.builder_flow_weight(name, day)
            for name in self.builders
            if not name.startswith("builder-")
        }
        for name in self._tail_names:
            live = self._tail_start[name] <= day
            self._day_flow_weights[name] = 0.001 if live else 0.0
        for name, builder in self.builders.items():
            if name.startswith("builder-"):
                pool = [
                    relay
                    for relay in calibration.LONG_TAIL_RELAY_POOL
                    if calibration.relay_is_live(relay, day)
                ]
                builder.relays = tuple(pool)
            else:
                weights = calibration.builder_relay_weights(name, day)
                builder.relays = tuple(sorted(weights))
                self._relay_route_weights = getattr(self, "_relay_route_weights", {})
                self._relay_route_weights[name] = weights

    # ------------------------------------------------------------------
    # Transaction generation
    # ------------------------------------------------------------------

    def _priority_fee(self, rng: np.random.Generator) -> int:
        return int(gwei(1) * float(rng.lognormal(mean=0.7, sigma=0.9)))

    def _willingness_to_pay(self, day: int, rng: np.random.Generator) -> int:
        """Absolute per-gas willingness to pay, in wei.

        Demand is elastic in the base fee: users whose willingness falls
        below the current base fee simply do not transact, which is what
        stabilizes EIP-1559 around the gas target.
        """
        reference = gwei(20) * calibration.tx_volume_multiplier(day)
        return int(reference * float(rng.lognormal(mean=0.0, sigma=0.8)))

    def _max_fee(self, base_fee: int, rng: np.random.Generator, priority: int) -> int:
        headroom = float(rng.uniform(1.05, 2.5))
        return max(int(base_fee * headroom) + priority, priority)

    def _extra_gas(self, rng: np.random.Generator) -> int:
        value = float(
            rng.lognormal(
                mean=np.log(self.config.extra_gas_mean),
                sigma=self.config.extra_gas_sigma,
            )
        )
        return int(min(value, 2_500_000))

    def _generate_user_tx(
        self, slot: int, day: int, base_fee: int, sophistication: float
    ) -> tuple[Transaction, bool] | None:
        """One user transaction, or None if the sender is priced out."""
        rng = self._rng_txgen
        sender = self.users[int(rng.integers(0, len(self.users)))]
        roll = float(rng.random())
        wtp = self._willingness_to_pay(day, rng)
        if wtp < base_fee:
            return None  # demand destruction under a high base fee
        priority = min(self._priority_fee(rng), wtp)
        max_fee = wtp
        wants_private = bool(rng.random() < self.config.private_user_tx_share)

        if roll < self.config.swap_tx_share:
            tx = self._make_swap_tx(
                sender, slot, max_fee, priority, sophistication, rng
            )
        elif roll < self.config.swap_tx_share + self.config.token_tx_share:
            token = str(rng.choice(_TRANSFER_TOKENS))
            recipient = self.users[int(rng.integers(0, len(self.users)))]
            balance = self.defi.tokens.balance_of(token, sender)
            amount = max(1, int(balance * float(rng.uniform(0.001, 0.02))))
            tx = self.tx_factory.create(
                sender,
                0,
                [TokenTransfer(token, recipient, amount)],
                max_fee,
                priority,
                extra_gas=self._extra_gas(rng),
                origin=ORIGIN_PRIVATE if wants_private else ORIGIN_PUBLIC,
                created_slot=slot,
            )
        else:
            recipient = self.users[int(rng.integers(0, len(self.users)))]
            value = ether(float(rng.uniform(0.01, 2.0)))
            tx = self.tx_factory.create(
                sender,
                0,
                [EthTransfer(recipient, value)],
                max_fee,
                priority,
                extra_gas=self._extra_gas(rng),
                origin=ORIGIN_PRIVATE if wants_private else ORIGIN_PUBLIC,
                created_slot=slot,
            )
        return tx, wants_private

    def _make_swap_tx(
        self,
        sender: Address,
        slot: int,
        max_fee: int,
        priority: int,
        sophistication: float,
        rng: np.random.Generator,
    ) -> Transaction:
        # Pools are static after world setup, so the candidate array (and
        # its numpy conversion inside ``rng.choice``) is built only once.
        pool_ids = self._swap_pool_ids
        if pool_ids is None:
            pool_ids = np.array(
                [
                    pool_id
                    for pool_id in self.defi.amm.pool_ids()
                    if "TRON" not in pool_id
                ]
            )
            self._swap_pool_ids = pool_ids
        pool_id = str(rng.choice(pool_ids))
        pool = self.defi.amm.pool(pool_id)
        token_in = pool.spec.token0 if rng.random() < 0.5 else pool.spec.token1
        is_victim = bool(rng.random() < self.config.victim_swap_rate)
        if token_in == "WETH":
            whole = (
                float(rng.uniform(0.8, 3.2)) * sophistication
                if is_victim
                else float(rng.uniform(0.05, 1.2))
            )
        else:
            reserve_in, _ = pool.reserves_for(token_in)
            whole_units = reserve_in / 10**self.defi.tokens.token(token_in).decimals
            fraction = (
                float(rng.uniform(0.002, 0.009))
                if is_victim
                else float(rng.uniform(0.0001, 0.001))
            )
            whole = whole_units * fraction
        amount_in = int(whole * 10**self.defi.tokens.token(token_in).decimals)
        amount_in = min(amount_in, self.defi.tokens.balance_of(token_in, sender))
        if amount_in <= 0:
            amount_in = 1
        quote = pool.quote_out(token_in, amount_in) if amount_in > 0 else 0
        slippage = float(rng.uniform(0.004, 0.018))
        min_out = int(quote * (1 - slippage))
        return self.tx_factory.create(
            sender,
            0,
            [SwapExact(pool_id, token_in, amount_in, min_out)],
            max_fee,
            priority,
            extra_gas=self._extra_gas(rng),
            origin=ORIGIN_PUBLIC,
            created_slot=slot,
        )

    def _generate_sanctioned_tx(self, slot: int, base_fee: int) -> Transaction:
        rng = self._rng_txgen
        priority = self._priority_fee(rng)
        max_fee = self._max_fee(base_fee, rng, priority)
        sanctioned = self._sanctioned_pool[
            int(rng.integers(0, len(self._sanctioned_pool)))
        ]
        user = self.users[int(rng.integers(0, len(self.users)))]
        roll = float(rng.random())
        if roll < 0.1:
            # Rare TRON token movement; reportable once TRON is designated.
            other = self.users[int(rng.integers(0, len(self.users)))]
            amount = int(float(rng.uniform(1_000, 80_000)) * 10**18)
            held = self.defi.tokens.balance_of("TRON", user)
            sender, actions = user, [
                TokenTransfer("TRON", other, min(amount, max(1, held)))
            ]
        elif roll < 0.4:
            sender, actions = sanctioned, [EthTransfer(user, ether(float(rng.uniform(0.5, 20.0))))]
        elif roll < 0.65:
            sender, actions = user, [EthTransfer(sanctioned, ether(float(rng.uniform(0.5, 10.0))))]
        else:
            token = str(rng.choice(["USDC", "USDT", "DAI"]))
            decimals = self.defi.tokens.token(token).decimals
            amount = int(float(rng.uniform(1_000, 50_000)) * 10**decimals)
            if roll < 0.85:
                sender, actions = sanctioned, [TokenTransfer(token, user, amount)]
            else:
                held = self.defi.tokens.balance_of(token, user)
                sender, actions = user, [
                    TokenTransfer(token, sanctioned, min(amount, max(1, held)))
                ]
        return self.tx_factory.create(
            sender,
            0,
            actions,
            max_fee,
            priority,
            extra_gas=self._extra_gas(rng),
            origin=ORIGIN_PUBLIC,
            created_slot=slot,
        )

    def _generate_public_bot_txs(self, slot: int, base_fee: int) -> list[Transaction]:
        """Naive mempool bots: public-PGA-style arbitrage and liquidations."""
        rng = self._rng_txgen
        txs: list[Transaction] = []
        if rng.random() < self.config.public_searcher_skill:
            plans = plan_liquidations(
                self.defi.markets, self.oracle, self.defi.tokens,
                min_bonus_wei=ether(0.01),
            )
            if plans:
                plan = plans[0]
                held = self.defi.tokens.balance_of(plan.debt_token, self._public_bot)
                if held >= plan.debt_amount:
                    bid_per_gas = max(
                        gwei(2),
                        int(plan.expected_bonus_wei * 0.5 / 300_000),
                    )
                    from ..chain.transaction import LiquidatePosition

                    txs.append(
                        self.tx_factory.create(
                            self._public_bot,
                            0,
                            [LiquidatePosition(plan.market_id, plan.borrower)],
                            base_fee * 2 + bid_per_gas,
                            bid_per_gas,
                            origin=ORIGIN_PUBLIC,
                            created_slot=slot,
                        )
                    )
        if rng.random() < self.config.public_searcher_skill * 0.8:
            cycles = self._arb_cycles()
            best_plan = None
            for cycle in cycles:
                plan = plan_cycle_arbitrage(
                    self.defi.amm,
                    cycle,
                    max_input=self.defi.tokens.balance_of("WETH", self._public_bot),
                    min_profit=int(0.01 * 10**18),
                )
                if plan is not None and (
                    best_plan is None or plan.profit > best_plan.profit
                ):
                    best_plan = plan
            if best_plan is not None:
                gas_estimate = 120_000 * len(best_plan.hops) + 21_000
                bid_per_gas = max(gwei(2), int(best_plan.profit * 0.5 / gas_estimate))
                actions = [
                    SwapExact(pool_id, token_in, amount_in, amount_out)
                    for pool_id, token_in, amount_in, amount_out in best_plan.hops
                ]
                txs.append(
                    self.tx_factory.create(
                        self._public_bot,
                        0,
                        actions,
                        base_fee * 2 + bid_per_gas,
                        bid_per_gas,
                        origin=ORIGIN_PUBLIC,
                        created_slot=slot,
                    )
                )
        return txs

    def _arb_cycles(self) -> list[tuple[str, ...]]:
        # Keyed by the AMM's pool set so newly deployed pools invalidate
        # the cache and arbitrage bots see cycles through them.
        signature = tuple(self.defi.amm.pool_ids())
        cached = getattr(self, "_cached_cycles", None)
        if cached is None or cached[0] != signature:
            cached = (signature, find_arbitrage_cycles(self.defi.amm))
            self._cached_cycles = cached
        return cached[1]

    # ------------------------------------------------------------------
    # The slot loop
    # ------------------------------------------------------------------

    def run(self) -> "World":
        """Advance the world through its day range (segment or full window)."""
        if self._has_run:
            return self
        self._has_run = True
        try:
            with self.perf.timer("slot_loop"):
                self.advance_days(self._day_start, self._day_end)
        finally:
            # The warm-pass executor must die with the run, success or
            # not — a leaked thread pool per world was a measured leak in
            # matrix-style callers that build many worlds.
            if self.worker_pool is not None:
                self.worker_pool.shutdown()
        return self

    def advance_days(self, day_start: int, day_end: int) -> None:
        """Advance through ``[day_start, day_end)`` with absolute numbering.

        The checkpointable core of :meth:`run`: day, slot and timestamp
        arithmetic all use absolute indices, so a segment world covering
        ``[40, 80)`` produces slots numbered exactly as the same days of a
        full-window run would.
        """
        config = self.config
        slot_seconds = config.seconds_per_simulated_slot
        for day in range(day_start, day_end):
            self._advance_day(day)
            date = MERGE_DATE + datetime.timedelta(days=day)
            for slot_in_day in range(config.blocks_per_day):
                global_index = day * config.blocks_per_day + slot_in_day
                slot = MERGE_SLOT + global_index
                slot_time = (
                    _GENESIS_TIME
                    + day * _SECONDS_PER_DAY
                    + slot_in_day * slot_seconds
                )
                self._run_slot(slot, day, date, slot_time, global_index)

    def _run_slot(
        self,
        slot: int,
        day: int,
        date: datetime.date,
        slot_time: float,
        global_index: int,
    ) -> None:
        config = self.config
        rng = self._rng_auction
        proposer = self.schedule.proposer_for_slot(slot)
        sophistication = calibration.builder_sophistication(day)
        intensity = self.timeline.mev_intensity(day)
        base_fee = self.chain.next_base_fee()

        with self.perf.timer("workload"):
            self._inject_workload(
                slot, day, slot_time, base_fee, sophistication, intensity
            )

        if rng.random() < config.missed_slot_rate:
            self.beacon.append(
                BeaconBlockRecord(
                    slot=slot,
                    date=date,
                    proposer_index=proposer.index,
                    proposer_entity=proposer.entity,
                    execution_block_hash=None,
                )
            )
            return

        # Register the proposer with its relays (relay-API dataset).
        # Relays exist only in the mev_boost regime.
        if proposer.uses_mev_boost and config.regime == "mev_boost":
            for relay_name in proposer.relays:
                key = (proposer.index, relay_name)
                if key not in self._registered_relays:
                    relay = self.relays.get(relay_name)
                    if relay is not None:
                        relay.register_validator(proposer, slot)
                        self._registered_relays.add(key)

        with self.perf.timer("bundle_search"):
            bundles_by_builder = self._collect_bundles(slot, base_fee, slot_time, day)
        active_builders = self._pick_active_builders(day)

        # One shared execution cache per slot: canonical state and base fee
        # are fixed within a slot, so builders replaying the same candidates
        # hit verified cached outcomes instead of re-executing.
        exec_cache = ExecutionCache() if config.enable_exec_cache else None

        ctx = SlotContext(
            slot=slot,
            day=day,
            date=date,
            timestamp=int(slot_time),
            block_number=self.chain.next_block_number,
            parent_hash=self.chain.parent_hash,
            base_fee=base_fee,
            gas_limit=MAX_BLOCK_GAS,
            canonical_ctx=self.canonical_ctx,
            engine=self.engine,
            mempool=self.mempool,
            private_flow=self.private_flow,
            bundles_by_builder=bundles_by_builder,
            sanctions=self.sanctions,
            rng=rng,
            tx_factory=self.tx_factory,
            build_cutoff_time=slot_time,
            exec_cache=exec_cache,
            build_workers=config.build_workers,
            worker_pool=self.worker_pool,
            perf=self.perf,
        )
        with self.perf.timer("auction"):
            outcome = self.auction.run(ctx, proposer, active_builders)
        if exec_cache is not None:
            self.perf.add("exec_cache_hits", exec_cache.stats.hits)
            self.perf.add("exec_cache_misses", exec_cache.stats.misses)
        self._apply_outcome(outcome, ctx, date)

    def _inject_workload(
        self,
        slot: int,
        day: int,
        slot_time: float,
        base_fee: int,
        sophistication: float,
        intensity: float,
    ) -> None:
        config = self.config
        rng = self._rng_txgen
        window = config.seconds_per_simulated_slot
        mean_txs = (
            config.mean_user_txs_per_slot
            * calibration.tx_volume_multiplier(day)
            * (1.0 + 0.25 * (intensity - 1.0))
        )
        count = int(rng.poisson(mean_txs))
        # Crisis days (FTX, USDC depeg) bring larger, more hurried trades —
        # the MEV supply behind Figure 10's profit spikes.
        victim_boost = sophistication * intensity**0.6
        for _ in range(count):
            generated = self._generate_user_tx(slot, day, base_fee, victim_boost)
            if generated is None:
                continue
            tx, wants_private = generated
            created = slot_time - float(rng.uniform(0.0, window))
            if wants_private:
                recipients = self._sample_builders_by_weight(1 + int(rng.random() < 0.4))
                if recipients:
                    self.private_flow.deliver(tx, recipients, created)
                    continue
            origin_node = self.network.random_node(rng)
            entry = self.mempool.broadcast(tx, origin_node, created)
            self.observations.record_broadcast(entry)

        if rng.random() < config.sanctioned_tx_rate:
            tx = self._generate_sanctioned_tx(slot, base_fee)
            origin_node = self.network.random_node(rng)
            entry = self.mempool.broadcast(
                tx, origin_node, slot_time - float(rng.uniform(0.0, window))
            )
            self.observations.record_broadcast(entry)

        for tx in self._generate_public_bot_txs(slot, base_fee):
            origin_node = self.network.random_node(rng)
            # Public bots raced the previous block: their transactions are
            # old enough for even slow local proposers to have seen them.
            entry = self.mempool.broadcast(
                tx, origin_node, slot_time - float(rng.uniform(0.3, 0.9)) * window
            )
            self.observations.record_broadcast(entry)

        if (
            config.enable_binance_ankr_flow
            and self.timeline.in_binance_ankr_window(day)
        ):
            for _ in range(int(rng.integers(2, 6))):
                priority = self._priority_fee(rng)
                tx = self.tx_factory.create(
                    self._binance_hot_wallet,
                    0,
                    [EthTransfer(self._ankr_deposit, ether(float(rng.uniform(5, 60))))],
                    self._max_fee(base_fee, rng, priority),
                    priority,
                    origin=ORIGIN_PRIVATE,
                    created_slot=slot,
                )
                self.private_flow.deliver(tx, ("AnkrPool",), slot_time - 1.0)

    def _collect_bundles(
        self, slot: int, base_fee: int, slot_time: float, day: int
    ) -> dict[str, list[Bundle]]:
        rng = self._rng_searchers
        pending = [
            entry.tx
            for entry in self.mempool.pending()
            if entry.broadcast_time <= slot_time
        ]
        view = SlotView(
            slot=slot,
            base_fee=base_fee,
            state=self.state,
            amm=self.defi.amm,
            markets=self.defi.markets,
            oracle=self.oracle,
            tokens=self.defi.tokens,
            mempool_txs=pending,
            rng=rng,
            tx_factory=self.tx_factory,
        )
        routed: dict[str, list[Bundle]] = {}
        from ..mev.bundles import KIND_SANDWICH

        for searcher in self.searchers:
            for bundle in searcher.find_bundles(view):
                targets = set(
                    self._sample_builders_by_weight(2 + int(rng.random() < 0.6))
                )
                if bundle.kind == KIND_SANDWICH and rng.random() < 0.2:
                    # Despite its relay's "ethical" branding, the bloXroute
                    # pipeline keeps receiving front-running flow — which is
                    # exactly how the paper finds 2,002 sandwiches slipping
                    # through the filter.
                    targets.add("bloXroute (E)")
                for target in sorted(targets):
                    routed.setdefault(target, []).append(bundle)
        return routed

    def _flow_arrays(self) -> tuple[list[str], "np.ndarray | None"]:
        """Positive-weight builder names and normalized sampling probs.

        Rebuilt only when the day's flow weights change (the dict is
        replaced each day); rebuilding per sampled tx was a measured
        hotspot.
        """
        weights = getattr(self, "_day_flow_weights", None)
        if not weights:
            return [], None
        cached = getattr(self, "_flow_sampling_arrays", None)
        if cached is None or cached[0] is not weights:
            names = [name for name, weight in weights.items() if weight > 0]
            if names:
                probs = np.array([weights[name] for name in names], dtype=float)
                probs = probs / probs.sum()
            else:
                probs = None
            cached = (weights, names, probs)
            self._flow_sampling_arrays = cached
        return cached[1], cached[2]

    def _sample_builders_by_weight(self, count: int) -> tuple[str, ...]:
        names, probs = self._flow_arrays()
        if not names:
            return ()
        count = min(count, len(names))
        chosen = self._rng_searchers.choice(
            names, size=count, replace=False, p=probs
        )
        return tuple(str(name) for name in np.atleast_1d(chosen))

    def _pick_active_builders(self, day: int) -> list[str]:
        names, probs = self._flow_arrays()
        if not names:
            return []
        count = min(self.config.max_active_builders_per_slot, len(names))
        chosen = self._rng_auction.choice(
            names, size=count, replace=False, p=probs
        )
        active = [str(name) for name in np.atleast_1d(chosen)]
        # Builders with a scripted event today always show up to work —
        # the incidents happened, so their actors must be present.
        for name, builder in self.builders.items():
            if name in active:
                continue
            if (
                day in builder.scripted_mispromise
                or day in builder.timestamp_bug_days
                or day in builder.claim_inflation_days
                or day in builder.withhold_days
                or day in builder.renege_days
            ):
                active.append(name)
        # Builders submit to a per-slot sampled subset of their relay routes.
        for name in active:
            builder = self.builders[name]
            route = getattr(self, "_relay_route_weights", {}).get(name)
            if route:
                relay_names = list(route)
                relay_probs = np.array([route[r] for r in relay_names], dtype=float)
                relay_probs = relay_probs / relay_probs.sum()
                take = min(len(relay_names), 1 + int(self._rng_auction.random() < 0.25))
                picked = self._rng_auction.choice(
                    relay_names, size=take, replace=False, p=relay_probs
                )
                relays = {str(r) for r in np.atleast_1d(picked)}
                if day in builder.claim_inflation_days:
                    # The exploit requires submitting to the relays whose
                    # validation the inflated claims abuse (Manifold in the
                    # paper's incident; scenarios can target any relay).
                    relays.update(builder.claim_inflation_relays)
                builder.relays = tuple(sorted(relays))
        return active

    def _apply_outcome(
        self, outcome: SlotOutcome, ctx: SlotContext, date: datetime.date
    ) -> None:
        if outcome.block is None:
            # ePBS slot whose execution payload never became canonical
            # (withheld, or rejected by the payload-timeliness committee):
            # consensus records the slot, the chain gets no block, and the
            # committed bid was already charged from escrow on canonical
            # state.  The discarded speculative fork is simply dropped.
            submission = outcome.winning_submission
            self.beacon.append(
                BeaconBlockRecord(
                    slot=outcome.slot,
                    date=date,
                    proposer_index=outcome.proposer.index,
                    proposer_entity=outcome.proposer.entity,
                    execution_block_hash=None,
                    payload_withheld=outcome.payload_withheld,
                )
            )
            self.rewards.reward_proposer(outcome.proposer.index)
            self.mempool.expire(ctx.build_cutoff_time)
            self.slot_records.append(
                SlotRecord(
                    slot=outcome.slot,
                    day=ctx.day,
                    block_number=-1,
                    mode=outcome.mode,
                    winning_builder=(
                        submission.builder_name if submission else None
                    ),
                    delivering_relays=(),
                    payment_wei=0,
                    claimed_wei=outcome.bid_wei,
                    settled_wei=outcome.settled_shortfall_wei,
                )
            )
            return
        outcome.speculative_ctx.commit()
        self.chain.append(outcome.block, outcome.result)
        self.beacon.append(
            BeaconBlockRecord(
                slot=outcome.slot,
                date=date,
                proposer_index=outcome.proposer.index,
                proposer_entity=outcome.proposer.entity,
                execution_block_hash=outcome.block.block_hash,
                used_mev_boost=outcome.used_pbs,
            )
        )
        self.rewards.reward_proposer(outcome.proposer.index)
        included = [tx.tx_hash for tx in outcome.block.transactions]
        self.mempool.remove_included(included)
        self.private_flow.remove_included(included)
        self.mempool.expire(ctx.build_cutoff_time)
        submission = outcome.winning_submission
        winner = submission.builder_name if submission else None
        for name, builder in self.builders.items():
            fired = builder.mispromise_fired
            if fired is None:
                continue
            builder.mispromise_fired = None
            if winner != name:
                # The mispriced bid lost this slot's auction; re-arm so the
                # documented incident still lands on chain.
                _, claimed, paid = fired
                builder.scripted_mispromise[ctx.day] = (claimed, paid)
        self.slot_records.append(
            SlotRecord(
                slot=outcome.slot,
                day=ctx.day,
                block_number=outcome.block.number,
                mode=outcome.mode,
                winning_builder=submission.builder_name if submission else None,
                delivering_relays=outcome.delivering_relays,
                payment_wei=submission.payment_wei if submission else 0,
                # The claim the proposer actually saw (relay-specific
                # overrides included — the Manifold exploit is visible here).
                claimed_wei=(
                    max(
                        (submission.claimed_for(relay)
                         for relay in outcome.delivering_relays),
                        default=submission.claimed_value_wei,
                    )
                    if submission
                    else 0
                ),
                settled_wei=outcome.settled_shortfall_wei,
            )
        )


    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------

    def digest(self) -> str:
        """A stable fingerprint of the simulated outcome.

        Covers the full chain (headers, receipts, logs, traces, fee
        accounting), the final ETH/token/AMM state, and the slot records.
        Two runs of the same config and seed must produce equal digests —
        regardless of ``enable_exec_cache``, ``build_workers`` or
        ``eager_protocol_forks`` — which the determinism regression tests
        assert.
        """
        hasher = hashlib.sha256()
        hasher.update(self.chain.digest().encode())
        state = self.state
        for address in sorted(state._balances):
            hasher.update(f"b|{address}|{state._balances[address]}".encode())
        for address in sorted(state._nonces):
            hasher.update(f"n|{address}|{state._nonces[address]}".encode())
        hasher.update(f"m|{state._minted_wei}|{state._burned_wei}".encode())
        token_balances = self.defi.tokens._balances._local
        for key in sorted(token_balances):
            hasher.update(f"t|{key}|{token_balances[key]}".encode())
        reserves = self.defi.amm._reserves._local
        for pool_id in sorted(reserves):
            hasher.update(f"r|{pool_id}|{reserves[pool_id]}".encode())
        for record in self.slot_records:
            hasher.update(
                f"s|{record.slot}|{record.mode}|{record.winning_builder}|"
                f"{record.payment_wei}|{record.claimed_wei}|"
                f"{record.settled_wei}".encode()
            )
        return hasher.hexdigest()


def build_world(config: SimulationConfig | None = None) -> World:
    """Create (but do not run) a world from a config."""
    return World(config or SimulationConfig())
