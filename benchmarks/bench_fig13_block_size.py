"""Figure 13: mean daily block size (gas) for PBS and non-PBS blocks."""

from repro.analysis import daily_block_size
from repro.analysis.report import render_series
from repro.constants import TARGET_BLOCK_GAS

from reporting import emit


def test_fig13_block_size(study, benchmark):
    pbs_mean, pbs_std, non_mean, non_std = benchmark(daily_block_size, study)

    lines = [
        render_series(pbs_mean),
        render_series(non_mean),
        f"  target block size: {TARGET_BLOCK_GAS:.1e} gas",
        f"  PBS mean {pbs_mean.mean():.3e} (std-of-day {pbs_std.mean():.2e}); "
        f"non-PBS mean {non_mean.mean():.3e} (std-of-day {non_std.mean():.2e})",
        "  paper: PBS hovers slightly above target; non-PBS continuously below",
    ]
    emit("fig13_block_size", "\n".join(lines))

    # Shape: PBS blocks start well above target and settle slightly above;
    # non-PBS blocks stay below target with larger day-to-day fluctuation.
    assert pbs_mean.values[0] > 1.7e7  # elevated right after the merge
    assert pbs_mean.mean() > TARGET_BLOCK_GAS
    assert non_mean.mean() < TARGET_BLOCK_GAS
    import statistics

    pbs_fluctuation = statistics.pstdev(pbs_mean.values[30:])
    non_fluctuation = statistics.pstdev(non_mean.values[30:])
    assert non_fluctuation > pbs_fluctuation
