"""Censorship analyses (paper Section 6).

The share of PBS blocks produced by OFAC-compliant relays (Fig. 17), the
daily share of PBS and non-PBS blocks containing non-compliant
transactions (Fig. 18), and the per-relay sanctioned-block counts of
Table 4's right side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.collector import StudyDataset
from .timeseries import DailySeries, group_by_date


def daily_compliant_relay_share(dataset: StudyDataset) -> DailySeries:
    """Share of each day's PBS blocks attributed to censoring relays.

    Multi-relay blocks contribute fractionally, matching the equal-split
    attribution of the relay market-share analysis.
    """
    compliant = dataset.compliant_relays
    buckets = group_by_date(
        [obs for obs in dataset.blocks if obs.relay_claimed]
    )
    dates = tuple(buckets)
    values = []
    for day_blocks in buckets.values():
        weight = 0.0
        for obs in day_blocks:
            relays = obs.claimed_by_relay
            weight += sum(1 for relay in relays if relay in compliant) / len(relays)
        values.append(weight / len(day_blocks))
    return DailySeries("OFAC-compliant relay share", dates, tuple(values))


def daily_sanctioned_share(
    dataset: StudyDataset,
) -> tuple[DailySeries, DailySeries]:
    """Daily share of blocks containing non-OFAC-compliant transactions,
    PBS vs non-PBS (Fig. 18)."""
    series = []
    for name, blocks in zip(
        ("PBS", "non-PBS"), (dataset.pbs_blocks(), dataset.non_pbs_blocks())
    ):
        buckets = group_by_date(blocks)
        dates = tuple(buckets)
        values = tuple(
            sum(obs.is_sanctioned for obs in day_blocks) / len(day_blocks)
            for day_blocks in buckets.values()
        )
        series.append(DailySeries(f"{name} sanctioned share", dates, values))
    return series[0], series[1]


def overall_sanctioned_shares(dataset: StudyDataset) -> dict[str, float]:
    """Window-level sanctioned-block shares (the paper's 2x headline)."""
    pbs = dataset.pbs_blocks()
    non_pbs = dataset.non_pbs_blocks()
    return {
        "PBS": sum(obs.is_sanctioned for obs in pbs) / len(pbs) if pbs else 0.0,
        "non-PBS": (
            sum(obs.is_sanctioned for obs in non_pbs) / len(non_pbs)
            if non_pbs
            else 0.0
        ),
    }


@dataclass(frozen=True)
class SanctionedRelayRow:
    """One relay's sanctioned-block row (Table 4, right side)."""

    relay: str
    is_compliant: bool
    sanctioned_blocks: int
    total_blocks: int

    @property
    def share(self) -> float:
        return self.sanctioned_blocks / self.total_blocks if self.total_blocks else 0.0


def sanctioned_blocks_by_relay(dataset: StudyDataset) -> list[SanctionedRelayRow]:
    """Sanctioned-block counts per relay over its delivered blocks."""
    totals: dict[str, int] = {}
    sanctioned: dict[str, int] = {}
    for obs in dataset.blocks:
        for relay in obs.claimed_by_relay:
            totals[relay] = totals.get(relay, 0) + 1
            if obs.is_sanctioned:
                sanctioned[relay] = sanctioned.get(relay, 0) + 1
    return [
        SanctionedRelayRow(
            relay=relay,
            is_compliant=relay in dataset.compliant_relays,
            sanctioned_blocks=sanctioned.get(relay, 0),
            total_blocks=totals[relay],
        )
        for relay in sorted(totals)
    ]


def sanctioned_inclusion_delay_after_updates(
    dataset: StudyDataset,
) -> dict[str, float]:
    """Share of each compliant relay's sanctioned blocks that fall within
    seven days after an OFAC list update — the paper's "gaps follow
    updates" observation."""
    update_dates = dataset.sanctions.update_dates()
    result: dict[str, float] = {}
    for row in sanctioned_blocks_by_relay(dataset):
        if not row.is_compliant:
            continue
        near_update = 0
        total = 0
        for obs in dataset.blocks:
            if row.relay not in obs.claimed_by_relay or not obs.is_sanctioned:
                continue
            total += 1
            if any(0 <= (obs.date - update).days <= 7 for update in update_dates):
                near_update += 1
        result[row.relay] = near_update / total if total else 0.0
    return result
