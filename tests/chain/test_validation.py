"""Unit tests for stateless header validation."""

import pytest

from repro.chain.block import seal_block
from repro.chain.validation import (
    ISSUE_BAD_BASE_FEE,
    ISSUE_BAD_NUMBER,
    ISSUE_BAD_PARENT,
    ISSUE_BAD_TIMESTAMP,
    ISSUE_GAS_OVERFLOW,
    header_is_valid,
    validate_header,
)
from repro.types import derive_address, derive_hash, gwei

PARENT = derive_hash("val", "parent")
FEE = derive_address("val", "builder")


def _header(number=5, timestamp=1000, parent=PARENT, base_fee=gwei(10),
            gas_used=1_000_000, gas_limit=30_000_000):
    return seal_block(
        number=number, slot=1, timestamp=timestamp, parent_hash=parent,
        fee_recipient=FEE, gas_limit=gas_limit, gas_used=gas_used,
        base_fee_per_gas=base_fee, transactions=(),
    ).header


EXPECT = dict(
    expected_parent_hash=PARENT,
    expected_number=5,
    expected_timestamp=1000,
    expected_base_fee=gwei(10),
)


class TestValidation:
    def test_valid_header(self):
        assert validate_header(_header(), **EXPECT) == []
        assert header_is_valid(_header(), **EXPECT)

    def test_bad_timestamp(self):
        issues = validate_header(_header(timestamp=232), **EXPECT)
        assert issues == [ISSUE_BAD_TIMESTAMP]

    def test_bad_parent(self):
        issues = validate_header(
            _header(parent=derive_hash("val", "other")), **EXPECT
        )
        assert ISSUE_BAD_PARENT in issues

    def test_bad_number(self):
        assert ISSUE_BAD_NUMBER in validate_header(_header(number=6), **EXPECT)

    def test_bad_base_fee(self):
        assert ISSUE_BAD_BASE_FEE in validate_header(
            _header(base_fee=gwei(11)), **EXPECT
        )

    def test_gas_overflow(self):
        header = _header(gas_used=30_000_001)
        assert ISSUE_GAS_OVERFLOW in validate_header(header, **EXPECT)

    def test_multiple_issues_reported(self):
        issues = validate_header(
            _header(number=6, timestamp=1), **EXPECT
        )
        assert set(issues) == {ISSUE_BAD_NUMBER, ISSUE_BAD_TIMESTAMP}
