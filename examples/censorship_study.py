"""Censorship study: does PBS prevent censorship? (paper Section 6)

Simulates a window spanning the 2022-11-08 OFAC update and measures:
* the share of PBS blocks produced by OFAC-compliant relays (Fig. 17),
* the share of PBS vs non-PBS blocks carrying sanctioned activity (Fig. 18),
* per-relay filtering performance, including the post-update gaps.

Run:  python examples/censorship_study.py
"""

from repro.analysis import (
    daily_compliant_relay_share,
    daily_sanctioned_share,
    sanctioned_blocks_by_relay,
)
from repro.analysis.censorship import (
    overall_sanctioned_shares,
    sanctioned_inclusion_delay_after_updates,
)
from repro.analysis.report import render_series, render_table
from repro.datasets import collect_study_dataset
from repro.simulation import SimulationConfig, build_world


def main() -> None:
    config = SimulationConfig(
        seed=21,
        num_days=80,  # merge through early December: covers the OFAC update
        blocks_per_day=14,
        num_validators=400,
        num_users=300,
    )
    print("building world (80 days)...")
    world = build_world(config).run()
    dataset = collect_study_dataset(world)

    print("\n-- share of PBS blocks from OFAC-compliant relays (Fig. 17) --")
    print(render_series(daily_compliant_relay_share(dataset)))

    print("\n-- sanctioned-block shares (Fig. 18) --")
    pbs, non_pbs = daily_sanctioned_share(dataset)
    print(render_series(pbs))
    print(render_series(non_pbs))
    overall = overall_sanctioned_shares(dataset)
    factor = overall["non-PBS"] / max(overall["PBS"], 1e-9)
    print(
        f"\noverall: PBS {overall['PBS']:.2%} vs non-PBS "
        f"{overall['non-PBS']:.2%}  ->  non-PBS blocks are {factor:.1f}x more"
        " likely to carry sanctioned transactions (paper: ~2x)"
    )

    print("\n-- per-relay filtering (Table 4, right side) --")
    rows = [
        [
            row.relay,
            "yes" if row.is_compliant else "no",
            row.sanctioned_blocks,
            row.total_blocks,
            f"{row.share:.2%}",
        ]
        for row in sanctioned_blocks_by_relay(dataset)
    ]
    print(
        render_table(
            ["relay", "announces OFAC", "sanctioned", "blocks", "share"], rows
        )
    )

    gaps = sanctioned_inclusion_delay_after_updates(dataset)
    if any(gaps.values()):
        print(
            "\ncompliant-relay misses cluster right after OFAC list updates"
            " (the stale-list gap the paper documents):"
        )
        for relay, share in sorted(gaps.items()):
            print(f"  {relay}: {share:.0%} of its misses within 7 days of an update")

    print(
        "\nconclusion: PBS blocks are *less* likely to include sanctioned"
        " transactions than locally built blocks — PBS aids censorship"
        " rather than preventing it, matching the paper."
    )


if __name__ == "__main__":
    main()
