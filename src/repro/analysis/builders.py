"""Builder landscape analyses (paper Sections 4.2, 5.2; Appendix B/C).

Builders are identified by their relay pubkeys and clustered by the fee
recipient address of the blocks they land, exactly like the paper: two
pubkeys landing blocks with the same fee recipient are one builder.
Blocks whose builder set the proposer as fee recipient cluster by pubkey
only (the paper's "Builder 3"/"Builder 6" cases with no on-chain trace).

Clustering runs over the columnar table: rows group by fee-recipient /
pubkey via ``np.unique`` and groups sharing a pubkey are merged through
a sparse connected-components pass — no ``BlockObservation`` is
materialized unless a caller reads ``cluster.blocks``.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph

from ..datasets.collector import StudyDataset
from ..datasets.columnar import exact_segment_sums
from ..datasets.records import BlockObservation
from .timeseries import DailySeries, by_date_order, day_slices


@dataclass
class BuilderCluster:
    """One clustered builder: pubkeys sharing fee-recipient addresses.

    ``indices`` are the cluster's row positions in the dataset's block
    table, ascending; ``blocks`` materializes the corresponding
    observations on demand for legacy callers.
    """

    name: str
    pubkeys: set[str] = field(default_factory=set)
    addresses: set[str] = field(default_factory=set)
    indices: list[int] = field(default_factory=list)
    _blocks_source: Sequence[BlockObservation] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def block_count(self) -> int:
        return len(self.indices)

    @property
    def blocks(self) -> list[BlockObservation]:
        if self._blocks_source is None:
            return []
        return [self._blocks_source[i] for i in self.indices]


def _decode(value) -> str:
    return value.decode("ascii") if isinstance(value, bytes) else str(value)


def cluster_builders(dataset: StudyDataset) -> list[BuilderCluster]:
    """Cluster PBS blocks into builders, most blocks first.

    Pubkeys are merged into one cluster when they land blocks paying the
    same fee recipient.  Cluster names prefer the builder's extra-data tag
    (the self-identification real builders put in blocks), falling back to
    a fee-recipient/pubkey prefix.
    """
    table = dataset.table
    pbs = table.is_pbs
    mismatch = table.recipient_mismatch
    has_pubkey = table.col("has_builder_pubkey")

    # Initial groups, matching the per-observation keys: blocks paying a
    # distinct fee recipient group by address; proposer-paying blocks
    # group by pubkey; blocks with neither anchor are unattributable.
    addr_rows = np.flatnonzero(pbs & mismatch)
    pk_rows = np.flatnonzero(pbs & ~mismatch & has_pubkey)
    pubkey = table.col("builder_pubkey")

    # Group keys come from the table's cached dictionary encodings, so
    # the string sorts happen once per table; the subsets here only sort
    # small integer id arrays.
    fee_uniques, _, fee_ids = table.dictionary("fee_recipient")
    pub_uniques, _, pub_ids = table.dictionary("builder_pubkey")
    addr_present, addr_first, addr_inverse = np.unique(
        fee_ids[addr_rows], return_index=True, return_inverse=True
    )
    pk_present, pk_first, pk_inverse = np.unique(
        pub_ids[pk_rows], return_index=True, return_inverse=True
    )
    addr_uniques = fee_uniques[addr_present]
    num_addr = len(addr_uniques)
    num_groups = num_addr + len(pk_present)
    if not num_groups:
        return []

    # Two groups sharing a pubkey are one builder.  Build the
    # (pubkey, group) incidence — addr-group rows that carry a pubkey,
    # plus every pubkey-only group by construction — sort it by pubkey,
    # and link consecutive groups within each pubkey run; the connected
    # components of that link graph are the clusters.
    addr_with_pk = has_pubkey[addr_rows]
    link_pubkeys = np.concatenate(
        [pub_ids[addr_rows][addr_with_pk], pk_present]
    )
    link_groups = np.concatenate(
        [
            addr_inverse[addr_with_pk],
            np.arange(num_addr, num_groups),
        ]
    )
    _, shared_inverse = np.unique(link_pubkeys, return_inverse=True)
    order = np.argsort(shared_inverse, kind="stable")
    run_groups = link_groups[order]
    run_keys = shared_inverse[order]
    same_key = run_keys[1:] == run_keys[:-1]
    edges_a = run_groups[:-1][same_key]
    edges_b = run_groups[1:][same_key]
    graph = sparse.coo_matrix(
        (np.ones(edges_a.shape[0]), (edges_a, edges_b)),
        shape=(num_groups, num_groups),
    )
    num_components, labels = csgraph.connected_components(
        graph, directed=False
    )

    # First-seen row per group orders the final clusters like the legacy
    # insertion-order dict (ties under the block-count sort stay stable).
    # ``np.unique``'s first-occurrence indices point at the minimal row of
    # each group because the row arrays are ascending.
    first_row = np.concatenate([addr_rows[addr_first], pk_rows[pk_first]])

    # Groups of each component, contiguous after a stable sort by label.
    label_order = np.argsort(labels, kind="stable")
    label_bounds = np.searchsorted(
        labels[label_order], np.arange(num_components + 1)
    )
    component_first = np.minimum.reduceat(
        first_row[label_order], label_bounds[:-1]
    )

    # Rows of each component, contiguous (and ascending) after one sort
    # of every clustered row by (component label, row).
    all_rows = np.concatenate([addr_rows, pk_rows])
    row_labels = np.concatenate(
        [labels[addr_inverse], labels[num_addr + pk_inverse]]
    )
    row_order = np.lexsort((all_rows, row_labels))
    comp_rows = all_rows[row_order]
    comp_labels = row_labels[row_order]
    comp_bounds = np.searchsorted(comp_labels, np.arange(num_components + 1))

    # Distinct tags / pubkeys per component via hash sets over the
    # component's row slices — O(rows) hashing beats per-cluster (or
    # global) string sorts.
    extra_data = table.col("extra_data")
    comp_tags = extra_data[comp_rows].tolist()
    comp_pub_mask = has_pubkey[comp_rows]
    comp_pub_labels = comp_labels[comp_pub_mask]
    comp_pubs = pubkey[comp_rows[comp_pub_mask]].tolist()
    pub_bounds = np.searchsorted(
        comp_pub_labels, np.arange(num_components + 1)
    )

    clusters: list[BuilderCluster] = []
    for component in np.argsort(component_first, kind="stable"):
        groups = label_order[
            label_bounds[component] : label_bounds[component + 1]
        ]
        addresses = {
            _decode(addr_uniques[group])
            for group in groups
            if group < num_addr
        }
        rows = comp_rows[comp_bounds[component] : comp_bounds[component + 1]]
        pubkeys = {
            _decode(pub)
            for pub in set(
                comp_pubs[pub_bounds[component] : pub_bounds[component + 1]]
            )
        }
        tags = {
            _decode(tag)
            for tag in set(
                comp_tags[comp_bounds[component] : comp_bounds[component + 1]]
            )
        } - {""}
        if tags:
            name = sorted(tags)[0]
        elif addresses:
            name = f"builder@{sorted(addresses)[0][:10]}"
        else:
            name = f"builder#{sorted(pubkeys)[0][:12]}"
        clusters.append(
            BuilderCluster(
                name=name,
                pubkeys=pubkeys,
                addresses=addresses,
                indices=rows.tolist(),
                _blocks_source=dataset.blocks,
            )
        )
    clusters.sort(key=lambda cluster: cluster.block_count, reverse=True)
    return clusters


def daily_builder_shares(
    dataset: StudyDataset,
) -> dict[datetime.date, dict[str, float]]:
    """Per-day share of PBS blocks built by each clustered builder (Fig. 8)."""
    clusters = cluster_builders(dataset)
    table = dataset.table
    cluster_of_row = np.full(len(table), -1, dtype=np.int64)
    for index, cluster in enumerate(clusters):
        cluster_of_row[cluster.indices] = index

    pbs_rows = np.flatnonzero(table.is_pbs)
    ordinals, (row_clusters,) = by_date_order(
        table.date_ordinal[pbs_rows], [cluster_of_row[pbs_rows]]
    )
    dates, starts, ends = day_slices(ordinals)
    num_clusters = max(len(clusters), 1)
    day_index = np.repeat(np.arange(len(dates)), ends - starts)
    valid = row_clusters >= 0
    keys = day_index[valid] * num_clusters + row_clusters[valid]
    key_uniques, key_first, key_counts = np.unique(
        keys, return_index=True, return_counts=True
    )
    day_bounds = np.searchsorted(
        key_uniques // num_clusters, np.arange(len(dates) + 1)
    )
    totals = np.bincount(day_index[valid], minlength=len(dates))

    shares: dict[datetime.date, dict[str, float]] = {}
    for day, date in enumerate(dates):
        total = int(totals[day])
        if not total:
            continue
        lo, hi = day_bounds[day], day_bounds[day + 1]
        # Builders enter the day's share dict in block-encounter order so
        # order-sensitive float reductions (the HHI) match the
        # per-object accumulation exactly.
        order = np.argsort(key_first[lo:hi], kind="stable")
        day_counts: dict[str, int] = {}
        for key, count in zip(
            key_uniques[lo:hi][order].tolist(),
            key_counts[lo:hi][order].tolist(),
        ):
            name = clusters[key % num_clusters].name
            day_counts[name] = day_counts.get(name, 0) + count
        shares[date] = {name: c / total for name, c in day_counts.items()}
    return shares


def builder_profit_distribution(dataset: StudyDataset) -> dict[str, list[float]]:
    """Per-builder distribution of block profits in ETH (Fig. 11).

    Profit = block value minus the payment to the proposer; negative for
    subsidized blocks.
    """
    eth = dataset.table.ether("builder_profit_wei")
    return {
        cluster.name: [float(v) for v in eth[cluster.indices]]
        for cluster in cluster_builders(dataset)
    }


def proposer_profit_by_builder(dataset: StudyDataset) -> dict[str, list[float]]:
    """Per-builder distribution of proposer payments in ETH (Fig. 12)."""
    eth = dataset.table.ether("proposer_profit_wei")
    return {
        cluster.name: [float(v) for v in eth[cluster.indices]]
        for cluster in cluster_builders(dataset)
    }


def daily_profit_split(dataset: StudyDataset) -> tuple[DailySeries, DailySeries]:
    """Daily builder vs proposer share of PBS block value (Fig. 19).

    Shares can leave [0, 1] on days when subsidies push builder profit
    negative — the paper's Appendix C spikes.  Day sums are exact
    Python-int reductions, so shares match the per-object math bit for
    bit.
    """
    table = dataset.table
    positive = np.asarray(table.block_value_wei > 0, dtype=bool)
    selected = np.flatnonzero(table.is_pbs & positive)
    ordinals, (value_col, builder_col, proposer_col) = by_date_order(
        table.date_ordinal[selected],
        [
            table.block_value_wei[selected],
            table.builder_profit_wei[selected],
            table.proposer_profit_wei[selected],
        ],
    )
    dates, starts, _ = day_slices(ordinals)
    value_sums = exact_segment_sums(value_col, starts)
    builder_sums = exact_segment_sums(builder_col, starts)
    proposer_sums = exact_segment_sums(proposer_col, starts)
    builder_values = tuple(
        builder / value if value else 0.0
        for builder, value in zip(builder_sums, value_sums)
    )
    proposer_values = tuple(
        proposer / value if value else 0.0
        for proposer, value in zip(proposer_sums, value_sums)
    )
    return (
        DailySeries("builder profit share", dates, builder_values),
        DailySeries("proposer profit share", dates, proposer_values),
    )


@dataclass(frozen=True)
class BuilderMapRow:
    """One row of the builder identity map (Table 5)."""

    name: str
    addresses: tuple[str, ...]
    pubkeys: tuple[str, ...]
    blocks: int


def builder_map(dataset: StudyDataset, top: int = 17) -> list[BuilderMapRow]:
    """Builder name -> fee-recipient address(es) -> pubkey(s) (Table 5)."""
    rows = []
    for cluster in cluster_builders(dataset)[:top]:
        rows.append(
            BuilderMapRow(
                name=cluster.name,
                addresses=tuple(sorted(cluster.addresses)),
                pubkeys=tuple(sorted(cluster.pubkeys)),
                blocks=cluster.block_count,
            )
        )
    return rows
