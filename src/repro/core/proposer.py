"""Local block production — the non-PBS path.

A validator that did not opt into MEV-Boost (or whose chosen PBS block was
rejected by its node, as in the 2022-11-10 incident) builds its own block:
public-mempool transactions ordered by priority fee, plus any private flow
addressed to its own entity (how exchange-to-pool pipelines like the
December 2022 Binance->AnkrPool flow reach non-PBS blocks) — but no
searcher bundles and no builder-grade order flow.  This is the "hobbyist"
block building the paper compares PBS against.
"""

from __future__ import annotations

from ..beacon.validator import Validator
from ..chain.block import Block, seal_block
from ..chain.execution import BlockExecutionResult, ExecutionContext
from .context import SlotContext

# Local proposers snapshot their mempool earlier than professional builders
# race it: they miss the tail of freshly gossiped transactions.
SNAPSHOT_LEAD_SECONDS = 60.0


class LocalBlockBuilder:
    """Greedy priority-fee block building from the public mempool."""

    def __init__(
        self,
        mempool_node: int = 0,
        snapshot_lead_seconds: float = SNAPSHOT_LEAD_SECONDS,
    ) -> None:
        self.mempool_node = mempool_node
        self.snapshot_lead_seconds = snapshot_lead_seconds

    def build(
        self, ctx: SlotContext, proposer: Validator
    ) -> tuple[Block, BlockExecutionResult, ExecutionContext]:
        """Build the proposer's own block on a speculative context."""
        cutoff = ctx.build_cutoff_time - self.snapshot_lead_seconds
        candidates = ctx.mempool.visible_to(self.mempool_node, cutoff)
        candidates.extend(
            ctx.private_flow.pending_for(proposer.entity, ctx.build_cutoff_time)
        )
        candidates.sort(
            key=lambda tx: tx.priority_fee_per_gas(ctx.base_fee), reverse=True
        )
        fork = ctx.canonical_ctx.fork()
        result = ctx.execute_block(
            candidates,
            fork,
            proposer.fee_recipient,
            ctx.gas_limit,
        )
        block = seal_block(
            number=ctx.block_number,
            slot=ctx.slot,
            timestamp=ctx.timestamp,
            parent_hash=ctx.parent_hash,
            fee_recipient=proposer.fee_recipient,
            gas_limit=ctx.gas_limit,
            gas_used=result.gas_used,
            base_fee_per_gas=ctx.base_fee,
            transactions=tuple(result.included),
            extra_data="",
        )
        return block, result, fork
