"""Builders as staked validators: the EIP-7732 (ePBS) consensus objects.

Enshrined PBS makes builders first-class protocol participants.  A
builder joins by submitting a deposit whose withdrawal credentials carry
the ``0x03`` *builder prefix* (analogous to the ``0x01`` execution-address
prefix); the deposit is escrowed by the protocol as slashable collateral.
Activation goes through a churn-limited queue exactly like validator
activation, so builder-set growth is rate-limited.  Once active, a
builder's signed execution-payload bids are protocol commitments: if the
revealed payload pays less than the committed bid the difference is
settled from the escrow, and *gross* reneging — like withholding the
payload outright after winning — is a slashable offence that also ejects
the builder from the active set.

This module holds the registry (deposits, activation, escrow accounting,
slashing) and the :class:`EpbsLedger` of per-slot protocol events the
dataset collector publishes.  The two-phase slot itself (bid commit →
payload reveal → payload-timeliness attestation) lives in
:mod:`repro.core.epbs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BeaconError
from ..types import Address, BLSPubkey, Wei, derive_address, ether

#: Withdrawal-credential prefix marking a deposit as a *builder* deposit
#: (EIP-7732's counterpart to the 0x01 execution-address prefix).
BUILDER_WITHDRAWAL_PREFIX = 0x03

#: The minimum (and, in this model, the standard) builder deposit.
MIN_BUILDER_DEPOSIT_WEI: Wei = ether(32)

#: Days between a deposit landing and the builder becoming *eligible*
#: for activation (the eligibility-epoch delay, in study days).
ACTIVATION_DELAY_DAYS = 2

#: Builders admitted from the activation queue per day (the churn limit).
ACTIVATION_CHURN_PER_DAY = 4

#: Slashing reasons recorded on :class:`SlashingEvent`.
SLASH_REASON_WITHHELD = "withheld-payload"
SLASH_REASON_RENEGING = "bid-reneging"


def builder_withdrawal_credentials(address: Address) -> str:
    """The 32-byte ``0x03`` credential committing to an execution address.

    Layout per the spec: one prefix byte, eleven zero bytes, then the
    20-byte execution-layer address the escrowed stake withdraws to.
    """
    body = address[2:] if address.startswith("0x") else address
    return f"0x{BUILDER_WITHDRAWAL_PREFIX:02x}" + "00" * 11 + body


# ---------------------------------------------------------------------------
# Ledger records (plain data; published through the study dataset)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DepositEvent:
    """One builder deposit processed by the protocol."""

    builder: str
    day: int
    amount_wei: Wei
    withdrawal_credentials: str


@dataclass(frozen=True)
class SlashingEvent:
    """One slashing applied to a builder's escrowed collateral."""

    builder: str
    day: int
    reason: str
    penalty_wei: Wei


@dataclass(frozen=True)
class EpbsSlotRecord:
    """Protocol-level outcome of one ePBS slot's two phases.

    ``revealed`` is False when the winning builder withheld the payload;
    ``payload_full`` is True only when the payload-timeliness committee
    attested the reveal and the execution payload became canonical.
    ``settled_wei`` is the escrow settlement on top of the embedded
    payment (bid shortfall, or the whole charged bid for withheld/empty
    slots).
    """

    slot: int
    day: int
    builder: str
    bid_wei: Wei
    payment_wei: Wei
    settled_wei: Wei
    revealed: bool
    payload_full: bool
    ptc_votes_for: int
    ptc_equivocations: int


@dataclass(frozen=True)
class EpbsDataset:
    """The collected ePBS protocol record (deposits, slashings, PTC votes).

    Attached to a :class:`~repro.datasets.collector.StudyDataset` when the
    world ran under the ``epbs`` regime; segment datasets concatenate in
    segment order during the sharded merge.
    """

    deposits: tuple[DepositEvent, ...] = ()
    slashings: tuple[SlashingEvent, ...] = ()
    slots: tuple[EpbsSlotRecord, ...] = ()

    def digest_lines(self):
        """Stable per-record digest lines (fed into the dataset digest)."""
        for event in self.deposits:
            yield (
                f"epbs-deposit:{event.builder}|{event.day}|"
                f"{event.amount_wei}|{event.withdrawal_credentials}"
            )
        for event in self.slashings:
            yield (
                f"epbs-slash:{event.builder}|{event.day}|{event.reason}|"
                f"{event.penalty_wei}"
            )
        for rec in self.slots:
            yield (
                f"epbs-slot:{rec.slot}|{rec.builder}|{rec.bid_wei}|"
                f"{rec.payment_wei}|{rec.settled_wei}|{int(rec.revealed)}|"
                f"{int(rec.payload_full)}|{rec.ptc_votes_for}|"
                f"{rec.ptc_equivocations}"
            )

    @staticmethod
    def concat(parts: "list[EpbsDataset]") -> "EpbsDataset":
        """Concatenate per-segment records in the given (segment) order."""
        return EpbsDataset(
            deposits=tuple(e for part in parts for e in part.deposits),
            slashings=tuple(e for part in parts for e in part.slashings),
            slots=tuple(r for part in parts for r in part.slots),
        )


class EpbsLedger:
    """Mutable event sink the registry and the auction write into."""

    def __init__(self) -> None:
        self.deposits: list[DepositEvent] = []
        self.slashings: list[SlashingEvent] = []
        self.slots: list[EpbsSlotRecord] = []

    def record_deposit(self, event: DepositEvent) -> None:
        self.deposits.append(event)

    def record_slashing(self, event: SlashingEvent) -> None:
        self.slashings.append(event)

    def record_slot(self, record: EpbsSlotRecord) -> None:
        self.slots.append(record)

    def to_dataset(self) -> EpbsDataset:
        return EpbsDataset(
            deposits=tuple(self.deposits),
            slashings=tuple(self.slashings),
            slots=tuple(self.slots),
        )


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


@dataclass
class BuilderRecord:
    """One staked builder's consensus-layer record."""

    name: str
    pubkey: BLSPubkey
    address: Address
    withdrawal_credentials: str
    deposit_wei: Wei
    deposit_day: int
    #: Remaining slashable escrow (decremented by settlements and slashes).
    collateral_wei: Wei = 0
    #: Genesis builders join the initial set without queueing.
    genesis: bool = False
    funded: bool = False
    activation_day: int | None = None
    slashed: bool = False
    slashed_day: int | None = None

    def is_active(self, day: int) -> bool:
        return (
            self.activation_day is not None
            and self.activation_day <= day
            and not self.slashed
        )


class BuilderRegistry:
    """Deposits, the activation queue, and the collateral escrow.

    The registry is driven day by day (:meth:`process_day`), which makes
    it checkpointable: a segment world fast-forwards the registry through
    the days before its window and lands in exactly the state a
    full-window run would have had — deposits, churned activations and
    escrow balances are all pure functions of the schedule and the day.
    Slashings applied *during* a run deactivate the builder for the rest
    of its segment (cross-segment propagation would break segment
    independence; the ledger records the event either way).
    """

    def __init__(self, state, ledger: EpbsLedger | None = None) -> None:
        self.state = state
        self.ledger = ledger
        self.escrow_address: Address = derive_address("epbs", "builder-escrow")
        self._records: dict[str, BuilderRecord] = {}
        self._order: list[str] = []  # deposit-submission order (FIFO queue)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records

    def record(self, name: str) -> BuilderRecord:
        try:
            return self._records[name]
        except KeyError:
            raise BeaconError(f"unknown builder {name!r}") from None

    def records(self) -> list[BuilderRecord]:
        return [self._records[name] for name in self._order]

    # -- deposits and activation ----------------------------------------

    def submit_deposit(
        self,
        name: str,
        pubkey: BLSPubkey,
        address: Address,
        amount_wei: Wei = MIN_BUILDER_DEPOSIT_WEI,
        day: int = 0,
        genesis: bool = False,
    ) -> BuilderRecord:
        """Schedule a builder deposit for ``day`` (processed by the queue).

        ``genesis`` builders model the initial builder set: their deposit
        still escrows on ``day``, but activation is immediate rather than
        churn-limited — exactly like the genesis validator set.
        """
        if name in self._records:
            raise BeaconError(f"builder {name!r} already deposited")
        if amount_wei < MIN_BUILDER_DEPOSIT_WEI:
            raise BeaconError(
                f"deposit {amount_wei} below the {MIN_BUILDER_DEPOSIT_WEI} "
                "minimum"
            )
        record = BuilderRecord(
            name=name,
            pubkey=pubkey,
            address=address,
            withdrawal_credentials=builder_withdrawal_credentials(address),
            deposit_wei=amount_wei,
            deposit_day=day,
            genesis=genesis,
        )
        self._records[name] = record
        self._order.append(name)
        return record

    def process_day(self, day: int) -> None:
        """Fund due deposits and churn the activation queue for ``day``."""
        for name in self._order:
            record = self._records[name]
            if record.funded or record.deposit_day > day:
                continue
            self.state.transfer(
                record.address, self.escrow_address, record.deposit_wei
            )
            record.funded = True
            record.collateral_wei = record.deposit_wei
            if record.genesis:
                record.activation_day = day
            if self.ledger is not None:
                self.ledger.record_deposit(
                    DepositEvent(
                        builder=name,
                        day=day,
                        amount_wei=record.deposit_wei,
                        withdrawal_credentials=record.withdrawal_credentials,
                    )
                )
        activated = 0
        for name in self._order:
            record = self._records[name]
            if (
                record.activation_day is not None
                or not record.funded
                or record.deposit_day + ACTIVATION_DELAY_DAYS > day
            ):
                continue
            if activated >= ACTIVATION_CHURN_PER_DAY:
                break
            record.activation_day = day
            activated += 1

    def is_active(self, name: str, day: int) -> bool:
        record = self._records.get(name)
        return record is not None and record.is_active(day)

    def active_builders(self, day: int) -> list[str]:
        return [name for name in self._order if self.is_active(name, day)]

    # -- escrow accounting ----------------------------------------------

    def charge(
        self, name: str, recipient: Address, amount_wei: Wei, state=None
    ) -> Wei:
        """Pay ``recipient`` from a builder's escrowed collateral.

        Settles at most the builder's remaining collateral; returns the
        amount actually transferred.  ``state`` selects the state layer
        the transfer lands on (a winning submission's speculative fork,
        or the canonical state for withheld/empty slots).
        """
        if amount_wei <= 0:
            return 0
        target = state if state is not None else self.state
        record = self.record(name)
        available = min(
            record.collateral_wei, target.balance_of(self.escrow_address)
        )
        settled = min(amount_wei, available)
        if settled > 0:
            target.transfer(self.escrow_address, recipient, settled)
            record.collateral_wei -= settled
        return settled

    def slash(
        self, name: str, penalty_wei: Wei, day: int, reason: str, state=None
    ) -> Wei:
        """Burn up to ``penalty_wei`` of a builder's collateral and eject it.

        The builder leaves the active set immediately (mid-epoch): a
        slashed builder's bids are ignored for the rest of the run.
        Returns the amount actually burned.
        """
        target = state if state is not None else self.state
        record = self.record(name)
        burned = min(
            penalty_wei,
            record.collateral_wei,
            target.balance_of(self.escrow_address),
        )
        if burned > 0:
            target.burn(self.escrow_address, burned)
            record.collateral_wei -= burned
        record.slashed = True
        record.slashed_day = day
        if self.ledger is not None:
            self.ledger.record_slashing(
                SlashingEvent(
                    builder=name, day=day, reason=reason, penalty_wei=burned
                )
            )
        return burned
