"""Incident mechanics over the medium session world.

The medium world covers the Manifold incident (day 30), the Eden
mispromise (day 23), the OFAC update (day 54), the timestamp bug (day 56)
and the FTX spike (day 57).
"""

import statistics

from repro.types import to_ether


class TestEdenMispromise:
    def test_exactly_one_mispriced_block(self, medium_world):
        mispriced = [
            record
            for record in medium_world.slot_records
            if record.winning_builder == "Eden"
            and record.claimed_wei > record.payment_wei * 2
        ]
        assert len(mispriced) == 1
        record = mispriced[0]
        assert to_ether(record.payment_wei) == 0.16
        assert record.day >= medium_world.timeline.eden_mispromise_day

    def test_scripted_entry_consumed(self, medium_world):
        assert medium_world.builders["Eden"].scripted_mispromise == {}


class TestManifoldIncident:
    def test_inflated_claims_on_incident_day_only(self, medium_world):
        day = medium_world.timeline.manifold_incident_day
        inflated = [
            record
            for record in medium_world.slot_records
            if record.winning_builder == "Builder 2"
            and "Manifold" in record.delivering_relays
            and record.claimed_wei > record.payment_wei * 10
        ]
        assert inflated, "the exploit should land at least one block"
        assert {record.day for record in inflated} == {day}

    def test_relay_outage_scheduled_once(self, medium_world):
        relay = medium_world.relays["Manifold"]
        assert relay.validation_outage_days == frozenset(
            {medium_world.timeline.manifold_incident_day}
        )


class TestTimestampBug:
    def test_fallback_blocks_are_locally_built(self, medium_world):
        for record in medium_world.slot_records:
            if record.mode != "pbs-fallback":
                continue
            block = medium_world.chain.block_by_number(record.block_number)
            proposer = medium_world.validators.by_index(
                medium_world.beacon.by_slot(record.slot).proposer_index
            )
            assert block.fee_recipient == proposer.fee_recipient
            # The canonical block carries a valid timestamp.
            assert block.header.timestamp > 0

    def test_buggy_submissions_never_canonical(self, medium_world):
        # No canonical block carries the stale-timestamp signature.
        slot_seconds = medium_world.config.seconds_per_simulated_slot
        for block in medium_world.chain:
            record = medium_world.beacon.by_slot(block.header.slot)
            assert not record.missed


class TestFtxSpike:
    def test_mev_heavier_around_ftx(self, medium_world):
        from repro.datasets import collect_study_dataset
        from repro.analysis import daily_mev_value_share

        dataset = collect_study_dataset(medium_world)
        pbs, _ = daily_mev_value_share(dataset)
        ftx_day = medium_world.timeline.ftx_bankruptcy_day
        window = [
            value
            for date, value in zip(pbs.dates, pbs.values)
            if abs(
                (date - dataset.blocks[0].date).days - ftx_day
            ) <= 2
        ]
        if window:  # medium world must cover day 57
            assert max(window) >= statistics.median(pbs.values)


class TestDailyMaintenance:
    def test_user_inventories_replenished(self, medium_world):
        tokens = medium_world.defi.tokens
        # After 70 days of heavy selling, the faucet keeps everyone solvent.
        poor = sum(
            1
            for user in medium_world.users
            if tokens.balance_of("WETH", user) < 10**18
        )
        assert poor < len(medium_world.users) * 0.2

    def test_searchers_stay_funded(self, medium_world):
        for searcher in medium_world.searchers:
            assert medium_world.state.balance_of(searcher.address) > 0

    def test_lending_market_repopulated(self, medium_world):
        positions = sum(
            len(market.positions())
            for market in medium_world.defi.markets.values()
        )
        assert positions > 0
