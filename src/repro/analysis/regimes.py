"""Three-regime comparison: MEV-Boost vs enshrined PBS vs local building.

The paper measures today's out-of-protocol MEV-Boost market; EIP-7732
moves the auction in-protocol with staked builders.  This module runs
the same seeded world under each ``SimulationConfig.regime`` and reduces
every run through the unchanged analysis pipeline to one comparable row
per regime: producer concentration (HHI), the promised-vs-delivered
value gap (Table 4's axis), censorship exposure, and the ePBS-only
failure counters (withheld payloads, empty slots, slashings).

Promised value means what the proposer was told it would earn before
signing: the best relay claim under MEV-Boost, the committed bid under
ePBS, and the block's own value under local building (where there is
nobody to promise anything, so the gap is identically zero).  Delivered
value is what actually arrived — including, under ePBS, shortfall
settlement drawn from builder collateral.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.collector import StudyDataset
from ..simulation.config import SimulationConfig
from ..types import ether
from .concentration import herfindahl_hirschman_index

#: The regimes compared, in presentation order.
REGIMES: tuple[str, ...] = ("mev_boost", "epbs", "local")


@dataclass(frozen=True)
class RegimeMetrics:
    """One regime's row of the comparison table."""

    regime: str
    blocks: int
    producer_hhi: float
    promised_eth: float
    delivered_eth: float
    sanctioned_block_share: float
    withheld_slots: int = 0
    empty_slots: int = 0
    slashings: int = 0

    @property
    def value_gap_eth(self) -> float:
        """Promised minus delivered — what proposers were shorted."""
        return self.promised_eth - self.delivered_eth


def regime_metrics(
    regime: str, dataset: StudyDataset
) -> RegimeMetrics:
    """Reduce one regime's dataset to its comparison row.

    Works on any :class:`StudyDataset` — the object-backed and columnar
    backends both iterate to :class:`BlockObservation` rows, and the
    ePBS counters come from the consensus-side ledger the collector
    attaches only when the regime stakes builders.
    """
    producer_blocks: dict[str, float] = {}
    promised_wei = 0
    delivered_wei = 0
    sanctioned = 0
    blocks = 0
    for obs in dataset.blocks:
        blocks += 1
        producer = obs.extra_data or obs.proposer_entity
        producer_blocks[producer] = producer_blocks.get(producer, 0.0) + 1.0
        delivered = obs.delivered_value_wei
        delivered_wei += delivered
        if dataset.epbs is None:
            promised_wei += max(obs.claimed_by_relay.values(), default=delivered)
        if obs.is_sanctioned:
            sanctioned += 1

    withheld = empty = slashings = 0
    if dataset.epbs is not None:
        # Under ePBS the promise is the committed bid, and delivery
        # includes escrow settlement (withheld-payload charges and
        # reneging shortfalls), which never appears in execution blocks.
        promised_wei = sum(rec.bid_wei for rec in dataset.epbs.slots)
        delivered_wei = sum(
            rec.payment_wei + rec.settled_wei for rec in dataset.epbs.slots
        )
        withheld = sum(1 for rec in dataset.epbs.slots if not rec.revealed)
        empty = sum(
            1
            for rec in dataset.epbs.slots
            if rec.revealed and not rec.payload_full
        )
        slashings = len(dataset.epbs.slashings)

    return RegimeMetrics(
        regime=regime,
        blocks=blocks,
        producer_hhi=herfindahl_hirschman_index(producer_blocks),
        promised_eth=promised_wei / ether(1),
        delivered_eth=delivered_wei / ether(1),
        sanctioned_block_share=(sanctioned / blocks) if blocks else 0.0,
        withheld_slots=withheld,
        empty_slots=empty,
        slashings=slashings,
    )


def compare_regimes(
    base_config: SimulationConfig,
    regimes: tuple[str, ...] = REGIMES,
) -> list[RegimeMetrics]:
    """Run ``base_config`` under each regime and reduce to comparison rows.

    Every run goes through the sharded executor (which degrades to the
    single-segment path when the config is unsegmented), so the rows are
    digest-deterministic at any ``shard_workers``.  Both ``regime`` and
    its legacy ``use_enshrined_pbs`` alias are overridden together —
    overriding only one of them on an already-normalised base silently
    re-normalises back.
    """
    from ..perf.sharding import run_sharded

    rows: list[RegimeMetrics] = []
    for regime in regimes:
        config = base_config.with_overrides(
            regime=regime, use_enshrined_pbs=(regime == "epbs")
        )
        run = run_sharded(config)
        rows.append(regime_metrics(regime, run.dataset))
    return rows


def render_regime_comparison(rows: list[RegimeMetrics]) -> str:
    """Plain-text comparison table for the CLI report."""
    header = (
        f"{'regime':<10} {'blocks':>7} {'HHI':>7} {'promised':>12} "
        f"{'delivered':>12} {'gap':>10} {'sanc%':>7} "
        f"{'withheld':>9} {'empty':>6} {'slashed':>8}"
    )
    lines = ["Three-regime comparison", header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.regime:<10} {row.blocks:>7d} {row.producer_hhi:>7.3f} "
            f"{row.promised_eth:>10.4f} E {row.delivered_eth:>10.4f} E "
            f"{row.value_gap_eth:>8.4f} E {row.sanctioned_block_share:>6.1%} "
            f"{row.withheld_slots:>9d} {row.empty_slots:>6d} "
            f"{row.slashings:>8d}"
        )
    return "\n".join(lines)
