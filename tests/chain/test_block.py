"""Unit tests for blocks and block hashing."""

from repro.chain.block import compute_block_hash, seal_block
from repro.chain.transaction import EthTransfer, TransactionFactory
from repro.types import derive_address, derive_hash, gwei

FEE_RECIPIENT = derive_address("blk", "builder")
PARENT = derive_hash("blk", "parent")


def _sealed(txs=(), extra="tag", number=1):
    return seal_block(
        number=number,
        slot=100,
        timestamp=1_700_000_000,
        parent_hash=PARENT,
        fee_recipient=FEE_RECIPIENT,
        gas_limit=30_000_000,
        gas_used=sum(tx.gas_limit for tx in txs),
        base_fee_per_gas=gwei(10),
        transactions=tuple(txs),
        extra_data=extra,
    )


def _tx(factory, nonce=0):
    return factory.create(
        derive_address("blk", "alice"), nonce,
        [EthTransfer(derive_address("blk", "bob"), 1)], gwei(20), gwei(1),
    )


class TestHashing:
    def test_hash_depends_on_contents(self):
        factory = TransactionFactory()
        a = _sealed([_tx(factory)])
        b = _sealed([_tx(factory, nonce=1)])
        assert a.block_hash != b.block_hash

    def test_hash_depends_on_extra_data(self):
        assert _sealed(extra="a").block_hash != _sealed(extra="b").block_hash

    def test_hash_deterministic(self):
        assert (
            compute_block_hash(1, PARENT, FEE_RECIPIENT, (), "x")
            == compute_block_hash(1, PARENT, FEE_RECIPIENT, (), "x")
        )


class TestAccessors:
    def test_last_transaction(self):
        factory = TransactionFactory()
        txs = [_tx(factory, nonce=i) for i in range(3)]
        block = _sealed(txs)
        assert block.last_transaction is txs[-1]

    def test_last_transaction_empty_block(self):
        assert _sealed().last_transaction is None

    def test_transaction_by_hash(self):
        factory = TransactionFactory()
        txs = [_tx(factory, nonce=i) for i in range(2)]
        block = _sealed(txs)
        assert block.transaction_by_hash(txs[1].tx_hash) is txs[1]
        assert block.transaction_by_hash(derive_hash("none", 1)) is None

    def test_number_and_fee_recipient(self):
        block = _sealed(number=42)
        assert block.number == 42
        assert block.fee_recipient == FEE_RECIPIENT
