"""Unit tests for the P2P overlay."""

import numpy as np
import pytest

from repro.errors import NetworkError
from repro.mempool.network import P2PNetwork


@pytest.fixture
def network():
    return P2PNetwork(np.random.default_rng(3), node_count=20, degree=4)


class TestTopology:
    def test_node_count(self, network):
        assert len(network.nodes()) == 20

    def test_self_delay_zero(self, network):
        assert network.propagation_delay(0, 0) == 0.0

    def test_delays_symmetric(self, network):
        assert network.propagation_delay(1, 7) == network.propagation_delay(7, 1)

    def test_delays_positive(self, network):
        for dest in network.nodes():
            if dest != 0:
                assert network.propagation_delay(0, dest) > 0

    def test_triangle_inequality(self, network):
        # Shortest paths: d(a,c) <= d(a,b) + d(b,c).
        d = network.propagation_delay
        assert d(0, 5) <= d(0, 2) + d(2, 5) + 1e-12

    def test_diameter_bounds_all_delays(self, network):
        diameter = network.diameter_seconds()
        for a in network.nodes():
            for b in network.nodes():
                assert network.propagation_delay(a, b) <= diameter + 1e-12

    def test_unknown_pair(self, network):
        with pytest.raises(NetworkError):
            network.propagation_delay(0, 999)


class TestConstruction:
    def test_deterministic(self):
        a = P2PNetwork(np.random.default_rng(5), node_count=16, degree=4)
        b = P2PNetwork(np.random.default_rng(5), node_count=16, degree=4)
        assert a.propagation_delay(0, 9) == b.propagation_delay(0, 9)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(NetworkError):
            P2PNetwork(np.random.default_rng(1), node_count=1)

    def test_bad_degree_rejected(self):
        with pytest.raises(NetworkError):
            P2PNetwork(np.random.default_rng(1), node_count=4, degree=10)

    def test_odd_degree_sum_patched(self):
        # 5 nodes x degree 3 = odd sum; constructor bumps the degree.
        network = P2PNetwork(np.random.default_rng(1), node_count=5, degree=3)
        assert len(network.nodes()) == 5

    def test_random_node_in_range(self):
        network = P2PNetwork(np.random.default_rng(2), node_count=10, degree=4)
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert 0 <= network.random_node(rng) < 10
