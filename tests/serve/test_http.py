"""Socket-level tests of the asyncio HTTP front end.

Raw-bytes clients (no HTTP library) against a live server on an
ephemeral port: keep-alive reuse, HEAD, method/path errors, query
parsing, pipelined sequential requests, and concurrent connections.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve import QueryService, RelayHTTPServer

from .conftest import build_golden_dataset

PAYLOADS_PATH = "/relay/v1/data/bidtraces/proposer_payload_delivered"


async def _read_response(reader: asyncio.StreamReader, head_only: bool = False):
    status_line = await reader.readline()
    _, status, _ = status_line.decode().split(" ", 2)
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    # HEAD responses advertise the GET's content-length but carry no body.
    body = b""
    if not head_only:
        body = await reader.readexactly(int(headers["content-length"]))
    return int(status), headers, body


async def _request(reader, writer, target: str, method: str = "GET"):
    writer.write(
        f"{method} {target} HTTP/1.1\r\nhost: test\r\n\r\n".encode()
    )
    await writer.drain()
    return await _read_response(reader, head_only=method == "HEAD")


def _with_server(scenario):
    async def runner():
        server = RelayHTTPServer(QueryService(build_golden_dataset()))
        await server.start()
        try:
            await scenario(server)
        finally:
            await server.close()

    asyncio.run(runner())


def test_keep_alive_serves_multiple_requests():
    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        status, headers, body = await _request(reader, writer, PAYLOADS_PATH)
        assert status == 200
        assert headers["connection"] == "keep-alive"
        assert headers["content-type"] == "application/json"
        assert headers["x-total-count"] == "3"
        assert len(json.loads(body)) == 3
        # Same connection, different endpoint.
        status, _, body = await _request(reader, writer, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_query_string_reaches_the_service():
    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        status, _, body = await _request(
            reader, writer, f"{PAYLOADS_PATH}?relay=flashbots&limit=1"
        )
        assert status == 200
        rows = json.loads(body)
        assert len(rows) == 1
        assert rows[0]["slot"] == "8001"
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_head_advertises_get_content_length_without_body():
    """RFC 9110 §9.3.2: HEAD's Content-Length is what GET would return."""

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        get_status, get_headers, get_body = await _request(
            reader, writer, PAYLOADS_PATH
        )
        assert get_status == 200
        status, headers, body = await _request(
            reader, writer, PAYLOADS_PATH, method="HEAD"
        )
        assert status == 200
        assert body == b""
        assert headers["content-length"] == str(len(get_body))
        assert int(headers["content-length"]) > 0
        assert headers["x-total-count"] == "3"
        # The connection stays framed: the next request still works.
        status, _, _ = await _request(reader, writer, "/healthz")
        assert status == 200
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


@pytest.mark.parametrize(
    ("method", "target", "expected"),
    [
        ("POST", PAYLOADS_PATH, 405),
        ("GET", "/nope", 404),
        ("GET", f"{PAYLOADS_PATH}?limit=banana", 400),
    ],
)
def test_error_statuses_over_the_wire(method, target, expected):
    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        status, _, body = await _request(reader, writer, target, method=method)
        assert status == expected
        assert json.loads(body)["code"] == expected
        # The connection survives an application error.
        status, _, _ = await _request(reader, writer, "/healthz")
        assert status == 200
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_connection_close_is_honored():
    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(
            f"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        status, headers, _ = await _read_response(reader)
        assert status == 200
        assert headers["connection"] == "close"
        assert await reader.read() == b""  # server closed its end
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_fifty_concurrent_connections():
    async def scenario(server):
        async def one_client(i: int) -> int:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            status, _, body = await _request(
                reader, writer, f"{PAYLOADS_PATH}?limit={1 + i % 3}"
            )
            writer.close()
            await writer.wait_closed()
            assert status == 200
            return len(json.loads(body))

        sizes = await asyncio.gather(*(one_client(i) for i in range(50)))
        assert sorted(set(sizes)) == [1, 2, 3]

    _with_server(scenario)


def test_malformed_request_line_gets_400():
    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"NONSENSE\r\n\r\n")
        await writer.drain()
        status, _, body = await _read_response(reader)
        assert status == 400
        assert json.loads(body)["code"] == 400
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_header_overflow_gets_431_and_closes():
    """More header lines than the cap: 431, connection closed.

    Regression: the old loop stopped reading after the cap without
    consuming the rest of the header block, so the *next* readline saw a
    leftover header and misparsed it as a request line — a desynced
    stream returning 400s for valid requests.
    """

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        extra = "".join(f"x-h{i}: {i}\r\n" for i in range(80))
        writer.write(f"GET /healthz HTTP/1.1\r\n{extra}\r\n".encode())
        await writer.drain()
        status, headers, body = await _read_response(reader)
        assert status == 431
        assert json.loads(body)["code"] == 431
        assert headers["connection"] == "close"
        # No desync possible: the server hangs up instead of misreading
        # the unconsumed header tail as a new request.
        assert await reader.read() == b""
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_exactly_max_headers_is_served():
    """The cap is a limit, not an off-by-one: 64 header lines still work."""

    async def scenario(server):
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        extra = "".join(f"x-h{i}: {i}\r\n" for i in range(64))
        writer.write(f"GET /healthz HTTP/1.1\r\n{extra}\r\n".encode())
        await writer.drain()
        status, _, body = await _read_response(reader)
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        writer.close()
        await writer.wait_closed()

    _with_server(scenario)


def test_drain_finishes_inflight_request_and_drops_idle():
    """`drain()` lets a mid-flight request complete, closes idle ones."""

    async def scenario(server):
        # Idle keep-alive connection: parked between requests.
        idle_reader, idle_writer = await asyncio.open_connection(
            "127.0.0.1", server.port
        )
        status, _, _ = await _request(idle_reader, idle_writer, "/healthz")
        assert status == 200

        # In-flight connection: request line sent, header block not yet
        # terminated — the server is mid-request when drain starts.
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        writer.write(b"GET /healthz HTTP/1.1\r\nhost: t\r\n")
        await writer.drain()
        await asyncio.sleep(0.05)  # let the server read the partial request

        drain_task = asyncio.create_task(server.drain(timeout=5.0))
        await asyncio.sleep(0.05)
        # Finish the in-flight request while draining.
        writer.write(b"\r\n")
        await writer.drain()
        status, headers, body = await _read_response(reader)
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        # The drained connection is closed after its response...
        assert headers["connection"] == "close"
        assert await reader.read() == b""
        # ...and the idle one was dropped without a response.
        assert await idle_reader.read() == b""
        await drain_task
        writer.close()
        idle_writer.close()

    _with_server(scenario)
