"""The scenario timeline: dated events of the measurement window.

Maps every incident and market event the paper discusses onto study-day
indices (day 0 = the merge, 2022-09-15) so the world loop and calibration
curves can key off them.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from ..constants import (
    FTX_BANKRUPTCY_DATE,
    MANIFOLD_INCIDENT_DATE,
    MERGE_DATE,
    NOV10_TIMESTAMP_BUG_DATE,
    OFAC_UPDATE_DATES,
    USDC_DEPEG_DATE,
    day_index,
)

EDEN_MISPROMISE_DATE = datetime.date(2022, 10, 8)  # block 15,703,347
BINANCE_ANKR_START = datetime.date(2022, 12, 12)
BINANCE_ANKR_END = datetime.date(2022, 12, 26)
BEAVERBUILD_LOSS_START = datetime.date(2023, 2, 12)
BEAVERBUILD_LOSS_END = datetime.date(2023, 3, 14)


@dataclass(frozen=True)
class Timeline:
    """Study-day indices for every scenario event."""

    ftx_bankruptcy_day: int = day_index(FTX_BANKRUPTCY_DATE)
    usdc_depeg_day: int = day_index(USDC_DEPEG_DATE)
    manifold_incident_day: int = day_index(MANIFOLD_INCIDENT_DATE)
    timestamp_bug_day: int = day_index(NOV10_TIMESTAMP_BUG_DATE)
    eden_mispromise_day: int = day_index(EDEN_MISPROMISE_DATE)
    ofac_update_days: tuple[int, ...] = tuple(
        day_index(date) for date in OFAC_UPDATE_DATES
    )
    binance_ankr_days: tuple[int, int] = (
        day_index(BINANCE_ANKR_START),
        day_index(BINANCE_ANKR_END),
    )
    beaverbuild_loss_days: tuple[int, int] = (
        day_index(BEAVERBUILD_LOSS_START),
        day_index(BEAVERBUILD_LOSS_END),
    )

    def mev_intensity(self, day: int) -> float:
        """Volatility/MEV multiplier for a study day.

        Baseline 1.0 with sharp spikes around the FTX bankruptcy and the
        USDC depeg — the two high-MEV events visible in the paper's
        Figure 10.
        """
        intensity = 1.0
        for event_day, peak, width in (
            (self.ftx_bankruptcy_day, 4.0, 2),
            (self.usdc_depeg_day, 3.5, 1),
        ):
            distance = abs(day - event_day)
            if distance <= width:
                intensity = max(intensity, 1.0 + (peak - 1.0) * (1 - distance / (width + 1)))
        return intensity

    def oracle_vol_multipliers(self, day: int) -> dict[str, float]:
        """Per-asset oracle volatility multipliers for a study day."""
        multipliers: dict[str, float] = {}
        if abs(day - self.ftx_bankruptcy_day) <= 2:
            multipliers["*"] = 3.0
        if day == self.usdc_depeg_day:
            multipliers["USDC"] = 8.0
            multipliers["*"] = max(multipliers.get("*", 1.0), 2.0)
        return multipliers

    def in_binance_ankr_window(self, day: int) -> bool:
        start, end = self.binance_ankr_days
        return start <= day <= end

    def beaverbuild_loss_boost(self, day: int) -> float:
        start, end = self.beaverbuild_loss_days
        return 0.12 if start <= day <= end else 0.0


def default_timeline() -> Timeline:
    return Timeline()


def date_of(day: int) -> datetime.date:
    return MERGE_DATE + datetime.timedelta(days=day)
