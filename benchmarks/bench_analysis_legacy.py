"""Pinned per-object analysis implementations (pre-columnar reference).

These are the hot aggregation loops exactly as they existed before the
columnar backend, kept verbatim so ``bench_perf_world.py`` can measure
the vectorized pipeline against a stable baseline instead of against a
moving git revision.  They are benchmark fixtures, not an API — the live
implementations are in :mod:`repro.analysis`.

``run_legacy_report_pipeline`` computes the same figures/tables the
``python -m repro report`` command renders; ``run_report_pipeline``
computes them through the current vectorized modules.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import concentration
from repro.analysis.relays import pbs_totals_row
from repro.analysis.timeseries import DailySeries, daily_series, group_by_date
from repro.types import to_ether


# -- legacy (per-object) implementations ------------------------------------


def legacy_daily_pbs_share(dataset) -> DailySeries:
    return daily_series(
        "PBS share",
        dataset.blocks,
        lambda day_blocks: sum(obs.is_pbs for obs in day_blocks) / len(day_blocks),
    )


def legacy_daily_user_payment_shares(dataset):
    def _shares(day_blocks):
        burned = sum(obs.burned_wei for obs in day_blocks)
        priority = sum(obs.priority_fees_wei for obs in day_blocks)
        direct = sum(obs.direct_transfers_wei for obs in day_blocks)
        total = burned + priority + direct
        if total == 0:
            return 0.0, 0.0, 0.0
        return burned / total, priority / total, direct / total

    buckets = group_by_date(dataset.blocks)
    dates = tuple(buckets)
    triples = [_shares(day_blocks) for day_blocks in buckets.values()]
    return (
        DailySeries("base fee share", dates, tuple(t[0] for t in triples)),
        DailySeries("priority fee share", dates, tuple(t[1] for t in triples)),
        DailySeries("direct transfer share", dates, tuple(t[2] for t in triples)),
    )


def legacy_daily_relay_shares(dataset, include_non_pbs=False):
    shares = {}
    for date, day_blocks in group_by_date(dataset.blocks).items():
        weights = {}
        denominator = 0
        for obs in day_blocks:
            relays = sorted(obs.claimed_by_relay)
            if not relays:
                if include_non_pbs:
                    weights["(none)"] = weights.get("(none)", 0.0) + 1.0
                    denominator += 1
                continue
            denominator += 1
            for relay in relays:
                weights[relay] = weights.get(relay, 0.0) + 1.0 / len(relays)
        if denominator:
            shares[date] = {
                name: weight / denominator for name, weight in weights.items()
            }
    return shares


class _LegacyCluster:
    __slots__ = ("name", "pubkeys", "addresses", "blocks")

    def __init__(self, name):
        self.name = name
        self.pubkeys = set()
        self.addresses = set()
        self.blocks = []

    @property
    def block_count(self):
        return len(self.blocks)


def legacy_cluster_builders(dataset):
    def _key(obs):
        if not obs.is_pbs:
            return None
        if obs.fee_recipient != obs.proposer_fee_recipient:
            return f"addr:{obs.fee_recipient}"
        if obs.builder_pubkey is not None:
            return f"pubkey:{obs.builder_pubkey}"
        return None

    by_key = {}
    for obs in dataset.blocks:
        key = _key(obs)
        if key is None:
            continue
        cluster = by_key.get(key)
        if cluster is None:
            cluster = _LegacyCluster(key)
            by_key[key] = cluster
        cluster.blocks.append(obs)
        if obs.builder_pubkey is not None:
            cluster.pubkeys.add(obs.builder_pubkey)
        if obs.fee_recipient != obs.proposer_fee_recipient:
            cluster.addresses.add(obs.fee_recipient)

    merged = []
    by_pubkey = {}
    for cluster in by_key.values():
        target = None
        for pubkey in cluster.pubkeys:
            if pubkey in by_pubkey:
                target = by_pubkey[pubkey]
                break
        if target is None:
            merged.append(cluster)
            target = cluster
        else:
            target.blocks.extend(cluster.blocks)
            target.pubkeys |= cluster.pubkeys
            target.addresses |= cluster.addresses
        for pubkey in target.pubkeys:
            by_pubkey[pubkey] = target

    for cluster in merged:
        tags = {obs.extra_data for obs in cluster.blocks if obs.extra_data}
        if tags:
            cluster.name = sorted(tags)[0]
        elif cluster.addresses:
            cluster.name = f"builder@{sorted(cluster.addresses)[0][:10]}"
        else:
            cluster.name = f"builder#{sorted(cluster.pubkeys)[0][:12]}"
    merged.sort(key=lambda cluster: cluster.block_count, reverse=True)
    return merged


def legacy_daily_builder_shares(dataset):
    clusters = legacy_cluster_builders(dataset)
    name_by_block = {}
    for cluster in clusters:
        for obs in cluster.blocks:
            name_by_block[obs.number] = cluster.name
    shares = {}
    pbs_blocks = [obs for obs in dataset.blocks if obs.is_pbs]
    for date, day_blocks in group_by_date(pbs_blocks).items():
        counts = {}
        total = 0
        for obs in day_blocks:
            name = name_by_block.get(obs.number)
            if name is None:
                continue
            counts[name] = counts.get(name, 0) + 1
            total += 1
        if total:
            shares[date] = {name: c / total for name, c in counts.items()}
    return shares


def legacy_daily_block_value(dataset):
    series = []
    pbs = [obs for obs in dataset.blocks if obs.is_pbs]
    non_pbs = [obs for obs in dataset.blocks if not obs.is_pbs]
    for name, blocks in zip(("PBS", "non-PBS"), (pbs, non_pbs)):
        buckets = group_by_date(blocks)
        dates = tuple(buckets)
        values = tuple(
            float(np.mean([to_ether(obs.block_value_wei) for obs in day_blocks]))
            for day_blocks in buckets.values()
        )
        series.append(DailySeries(f"{name} block value [ETH]", dates, values))
    return series[0], series[1]


def legacy_daily_private_tx_share(dataset):
    series = []
    pbs = [obs for obs in dataset.blocks if obs.is_pbs]
    non_pbs = [obs for obs in dataset.blocks if not obs.is_pbs]
    for name, blocks in zip(("PBS", "non-PBS"), (pbs, non_pbs)):
        buckets = group_by_date(blocks)
        dates = tuple(buckets)
        values = []
        for day_blocks in buckets.values():
            txs = sum(obs.tx_count for obs in day_blocks)
            private = sum(obs.private_tx_count for obs in day_blocks)
            values.append(private / txs if txs else 0.0)
        series.append(DailySeries(f"{name} private tx share", dates, tuple(values)))
    return series[0], series[1]


def legacy_daily_mev_per_block(dataset, kind=None):
    series = []
    pbs = [obs for obs in dataset.blocks if obs.is_pbs]
    non_pbs = [obs for obs in dataset.blocks if not obs.is_pbs]
    for name, blocks in zip(("PBS", "non-PBS"), (pbs, non_pbs)):
        buckets = group_by_date(blocks)
        dates = tuple(buckets)
        values = []
        for day_blocks in buckets.values():
            count = 0
            for obs in day_blocks:
                labels = dataset.mev.labels_for_block(obs.number)
                if kind is not None:
                    labels = [label for label in labels if label.kind == kind]
                count += len(labels)
            values.append(count / len(day_blocks))
        label = kind or "MEV"
        series.append(DailySeries(f"{name} {label}/block", dates, tuple(values)))
    return series[0], series[1]


def legacy_daily_compliant_relay_share(dataset):
    compliant = dataset.compliant_relays
    buckets = group_by_date([obs for obs in dataset.blocks if obs.relay_claimed])
    dates = tuple(buckets)
    values = []
    for day_blocks in buckets.values():
        weight = 0.0
        for obs in day_blocks:
            relays = obs.claimed_by_relay
            weight += sum(1 for relay in relays if relay in compliant) / len(relays)
        values.append(weight / len(day_blocks))
    return DailySeries("OFAC-compliant relay share", dates, tuple(values))


def legacy_daily_sanctioned_share(dataset):
    series = []
    pbs = [obs for obs in dataset.blocks if obs.is_pbs]
    non_pbs = [obs for obs in dataset.blocks if not obs.is_pbs]
    for name, blocks in zip(("PBS", "non-PBS"), (pbs, non_pbs)):
        buckets = group_by_date(blocks)
        dates = tuple(buckets)
        values = tuple(
            sum(obs.is_sanctioned for obs in day_blocks) / len(day_blocks)
            for day_blocks in buckets.values()
        )
        series.append(DailySeries(f"{name} sanctioned share", dates, values))
    return series[0], series[1]


def legacy_relay_trust_table(dataset):
    from repro.analysis.relays import RelayTrustRow

    per_relay = {}
    for obs in dataset.blocks:
        if not obs.claimed_by_relay:
            continue
        delivered = obs.delivered_value_wei
        for relay, claimed in obs.claimed_by_relay.items():
            per_relay.setdefault(relay, []).append((claimed, delivered))

    rows = []
    for relay in sorted(per_relay):
        pairs = per_relay[relay]
        promised = sum(claimed for claimed, _ in pairs)
        delivered = sum(actual for _, actual in pairs)
        over_promised = sum(1 for claimed, actual in pairs if claimed > actual)
        rows.append(
            RelayTrustRow(
                relay=relay,
                delivered_value_eth=to_ether(delivered),
                promised_value_eth=to_ether(promised),
                share_of_value_delivered=(
                    delivered / promised if promised else 1.0
                ),
                share_over_promised_blocks=over_promised / len(pairs),
                blocks=len(pairs),
            )
        )
    return rows


# -- pipeline drivers --------------------------------------------------------


def run_legacy_report_pipeline(dataset) -> dict:
    """Every report-command analysis, via the pinned per-object loops."""
    rows = legacy_relay_trust_table(dataset)
    return {
        "fig03": legacy_daily_user_payment_shares(dataset),
        "fig04": legacy_daily_pbs_share(dataset),
        "fig06_relay": concentration.daily_hhi_series(
            "relay HHI", legacy_daily_relay_shares(dataset)
        ),
        "fig06_builder": concentration.daily_hhi_series(
            "builder HHI", legacy_daily_builder_shares(dataset)
        ),
        "fig09": legacy_daily_block_value(dataset),
        "fig14": legacy_daily_private_tx_share(dataset),
        "fig15": legacy_daily_mev_per_block(dataset),
        "fig17": legacy_daily_compliant_relay_share(dataset),
        "fig18": legacy_daily_sanctioned_share(dataset),
        "table4": (rows, pbs_totals_row(rows)),
    }


def run_report_pipeline(dataset) -> dict:
    """The same figures through the current vectorized analysis modules."""
    from repro.analysis import (
        daily_block_value,
        daily_builder_shares,
        daily_compliant_relay_share,
        daily_mev_per_block,
        daily_pbs_share,
        daily_private_tx_share,
        daily_relay_shares,
        daily_sanctioned_share,
        daily_user_payment_shares,
        relay_trust_table,
    )

    rows = relay_trust_table(dataset)
    return {
        "fig03": daily_user_payment_shares(dataset),
        "fig04": daily_pbs_share(dataset),
        "fig06_relay": concentration.daily_hhi_series(
            "relay HHI", daily_relay_shares(dataset)
        ),
        "fig06_builder": concentration.daily_hhi_series(
            "builder HHI", daily_builder_shares(dataset)
        ),
        "fig09": daily_block_value(dataset),
        "fig14": daily_private_tx_share(dataset),
        "fig15": daily_mev_per_block(dataset),
        "fig17": daily_compliant_relay_share(dataset),
        "fig18": daily_sanctioned_share(dataset),
        "table4": (rows, pbs_totals_row(rows)),
    }
