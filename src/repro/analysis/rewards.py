"""User payment decomposition (paper Section 3.1, Figure 3).

Splits each block's user payments into the burned base fee, the priority
fee, and direct transfers to the fee recipient, and reports their daily
shares — the paper finds ~72% burned, ~18% priority, the rest direct.
"""

from __future__ import annotations

from ..datasets.collector import StudyDataset
from .timeseries import DailySeries, daily_series, group_by_date


def daily_user_payment_shares(
    dataset: StudyDataset,
) -> tuple[DailySeries, DailySeries, DailySeries]:
    """(base-fee share, priority-fee share, direct-transfer share) per day."""

    def _shares(day_blocks) -> tuple[float, float, float]:
        burned = sum(obs.burned_wei for obs in day_blocks)
        priority = sum(obs.priority_fees_wei for obs in day_blocks)
        direct = sum(obs.direct_transfers_wei for obs in day_blocks)
        total = burned + priority + direct
        if total == 0:
            return 0.0, 0.0, 0.0
        return burned / total, priority / total, direct / total

    buckets = group_by_date(dataset.blocks)
    dates = tuple(buckets)
    triples = [_shares(day_blocks) for day_blocks in buckets.values()]
    base = DailySeries("base fee share", dates, tuple(t[0] for t in triples))
    priority = DailySeries(
        "priority fee share", dates, tuple(t[1] for t in triples)
    )
    direct = DailySeries(
        "direct transfer share", dates, tuple(t[2] for t in triples)
    )
    return base, priority, direct


def daily_total_user_payments_eth(dataset: StudyDataset) -> DailySeries:
    """Total user payments per day, in ETH."""
    return daily_series(
        "user payments [ETH]",
        dataset.blocks,
        lambda day_blocks: sum(
            obs.burned_wei + obs.block_value_wei for obs in day_blocks
        )
        / 10**18,
    )
