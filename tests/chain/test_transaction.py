"""Unit tests for transactions and their fee semantics."""

import pytest

from repro.chain.transaction import (
    EthTransfer,
    INTRINSIC_GAS,
    ORIGIN_BUNDLE,
    ORIGIN_PUBLIC,
    SWAP_GAS,
    SwapExact,
    TipCoinbase,
    TokenTransfer,
    TransactionFactory,
    make_transaction,
)
from repro.errors import ConfigError
from repro.types import derive_address, gwei

SENDER = derive_address("test", "sender")
OTHER = derive_address("test", "other")


def _tx(**kwargs):
    defaults = dict(
        sender=SENDER,
        nonce=0,
        actions=[EthTransfer(OTHER, 100)],
        max_fee_per_gas=gwei(30),
        max_priority_fee_per_gas=gwei(2),
    )
    defaults.update(kwargs)
    return make_transaction(**defaults)


class TestConstruction:
    def test_hashes_unique(self):
        assert _tx().tx_hash != _tx().tx_hash

    def test_factory_deterministic_per_instance(self):
        a = TransactionFactory().create(SENDER, 0, [EthTransfer(OTHER, 1)], 10, 1)
        b = TransactionFactory().create(SENDER, 0, [EthTransfer(OTHER, 1)], 10, 1)
        assert a.tx_hash == b.tx_hash

    def test_priority_above_max_fee_rejected(self):
        with pytest.raises(ConfigError):
            _tx(max_fee_per_gas=gwei(1), max_priority_fee_per_gas=gwei(2))

    def test_bad_origin_rejected(self):
        with pytest.raises(ConfigError):
            _tx(origin="weird")

    def test_negative_extra_gas_rejected(self):
        with pytest.raises(ConfigError):
            _tx(extra_gas=-1)

    def test_origins(self):
        assert _tx().origin == ORIGIN_PUBLIC
        assert _tx(origin=ORIGIN_BUNDLE).origin == ORIGIN_BUNDLE


class TestGas:
    def test_intrinsic_only_for_plain_transfer(self):
        assert _tx().gas_limit == INTRINSIC_GAS

    def test_swap_gas_adds(self):
        tx = _tx(actions=[SwapExact("p", "WETH", 1, 0)])
        assert tx.gas_limit == INTRINSIC_GAS + SWAP_GAS

    def test_extra_gas_adds(self):
        assert _tx(extra_gas=100_000).gas_limit == INTRINSIC_GAS + 100_000

    def test_multiple_actions_sum(self):
        tx = _tx(actions=[EthTransfer(OTHER, 1), TokenTransfer("USDC", OTHER, 5)])
        assert tx.gas_limit > INTRINSIC_GAS


class TestFees:
    def test_eligibility(self):
        tx = _tx(max_fee_per_gas=gwei(10))
        assert tx.is_eligible(gwei(10))
        assert not tx.is_eligible(gwei(11))

    def test_priority_capped_by_headroom(self):
        tx = _tx(max_fee_per_gas=gwei(10), max_priority_fee_per_gas=gwei(4))
        # At base fee 8, only 2 gwei of headroom remains.
        assert tx.priority_fee_per_gas(gwei(8)) == gwei(2)

    def test_priority_full_when_headroom_allows(self):
        tx = _tx(max_fee_per_gas=gwei(10), max_priority_fee_per_gas=gwei(4))
        assert tx.priority_fee_per_gas(gwei(3)) == gwei(4)

    def test_effective_gas_price(self):
        tx = _tx(max_fee_per_gas=gwei(10), max_priority_fee_per_gas=gwei(4))
        assert tx.effective_gas_price(gwei(3)) == gwei(7)

    def test_max_spend_covers_fees_and_value(self):
        tx = _tx(actions=[EthTransfer(OTHER, 777), TipCoinbase(23)])
        assert tx.max_spend() == tx.gas_limit * tx.max_fee_per_gas + 800
