"""Unit tests for the OFAC list and sanction screening."""

import datetime

import pytest

from repro.chain.block import seal_block
from repro.chain.receipts import Receipt, transfer_log
from repro.chain.traces import CallFrame, TransactionTrace, FRAME_INTERNAL
from repro.chain.transaction import EthTransfer, TokenTransfer, TransactionFactory
from repro.constants import MERGE_DATE, OFAC_UPDATE_DATES
from repro.defi.tokens import TokenRegistry
from repro.errors import ConfigError
from repro.sanctions import (
    SanctionsList,
    SanctionScreener,
    build_ofac_timeline,
    tx_statically_involves,
)
from repro.types import derive_address, derive_hash, gwei

BAD = derive_address("sanc", "bad")
USER = derive_address("sanc", "user")
LISTED = datetime.date(2022, 11, 8)


@pytest.fixture
def sanctions():
    s = SanctionsList()
    s.add(BAD, LISTED)
    return s


class TestSanctionsList:
    def test_next_day_rule(self, sanctions):
        assert not sanctions.is_sanctioned(BAD, LISTED)
        assert sanctions.is_sanctioned(BAD, LISTED + datetime.timedelta(days=1))

    def test_addresses_as_of(self, sanctions):
        assert sanctions.addresses_as_of(LISTED) == frozenset()
        later = LISTED + datetime.timedelta(days=5)
        assert sanctions.addresses_as_of(later) == frozenset({BAD})

    def test_duplicate_rejected(self, sanctions):
        with pytest.raises(ConfigError):
            sanctions.add(BAD, LISTED)

    def test_token_designation_next_day(self, sanctions):
        sanctions.add_token("TRON", LISTED)
        assert "TRON" not in sanctions.tokens_as_of(LISTED)
        assert "TRON" in sanctions.tokens_as_of(
            LISTED + datetime.timedelta(days=1)
        )

    def test_update_dates(self, sanctions):
        sanctions.add(derive_address("sanc", "other"), LISTED)
        sanctions.add(derive_address("sanc", "third"), datetime.date(2023, 2, 1))
        assert sanctions.update_dates() == [LISTED, datetime.date(2023, 2, 1)]

    def test_listed_date_lookup(self, sanctions):
        assert sanctions.listed_date_of(BAD) == LISTED
        assert sanctions.listed_date_of(USER) is None


class TestDefaultTimeline:
    def test_total_entries_match_paper(self):
        sanctions = build_ofac_timeline()
        assert len(sanctions) == 134  # the paper's OFAC dataset size

    def test_batches_on_real_dates(self):
        sanctions = build_ofac_timeline()
        dates = set(sanctions.update_dates())
        assert set(OFAC_UPDATE_DATES) <= dates

    def test_initial_batch_effective_at_merge(self):
        sanctions = build_ofac_timeline()
        assert len(sanctions.addresses_as_of(MERGE_DATE)) >= 100


class TestStaticCheck:
    def test_sender_flagged(self):
        factory = TransactionFactory()
        tx = factory.create(BAD, 0, [EthTransfer(USER, 1)], gwei(20), gwei(1))
        assert tx_statically_involves(tx, {BAD})

    def test_recipient_flagged(self):
        factory = TransactionFactory()
        tx = factory.create(USER, 0, [EthTransfer(BAD, 1)], gwei(20), gwei(1))
        assert tx_statically_involves(tx, {BAD})

    def test_token_designation_flagged(self):
        factory = TransactionFactory()
        tx = factory.create(
            USER, 0, [TokenTransfer("TRON", USER, 1)], gwei(20), gwei(1)
        )
        assert tx_statically_involves(tx, set(), {"TRON"})

    def test_clean_tx_passes(self):
        factory = TransactionFactory()
        tx = factory.create(USER, 0, [EthTransfer(USER, 1)], gwei(20), gwei(1))
        assert not tx_statically_involves(tx, {BAD}, {"TRON"})


class TestScreener:
    @pytest.fixture
    def screener(self, sanctions):
        tokens = TokenRegistry()
        tokens.deploy("USDC", 6)
        tokens.deploy("ALT1")
        tokens.deploy("TRON")
        sanctions.add_token("TRON", LISTED)
        self.tokens = tokens
        return SanctionScreener(sanctions, tokens)

    def _receipt(self, logs=(), tx_hash=None):
        return Receipt(
            tx_hash=tx_hash or derive_hash("sanc", "tx"),
            tx_index=0,
            status=1,
            gas_used=21_000,
            effective_gas_price=gwei(10),
            logs=tuple(logs),
        )

    def _trace(self, frames=(), tx_hash=None):
        return TransactionTrace(
            tx_hash=tx_hash or derive_hash("sanc", "tx"), frames=tuple(frames)
        )

    def test_eth_trace_flagged(self, screener):
        trace = self._trace(
            [CallFrame(1, BAD, USER, 100, FRAME_INTERNAL)]
        )
        after = LISTED + datetime.timedelta(days=2)
        assert screener.is_non_compliant(trace, self._receipt(), after)

    def test_zero_value_trace_not_flagged(self, screener):
        trace = self._trace([CallFrame(1, BAD, USER, 0, FRAME_INTERNAL)])
        after = LISTED + datetime.timedelta(days=2)
        assert not screener.is_non_compliant(trace, self._receipt(), after)

    def test_before_effective_date_not_flagged(self, screener):
        trace = self._trace([CallFrame(1, BAD, USER, 100, FRAME_INTERNAL)])
        assert not screener.is_non_compliant(trace, self._receipt(), LISTED)

    def test_screened_token_log_flagged(self, screener):
        log = transfer_log(self.tokens.address_of("USDC"), BAD, USER, 5)
        after = LISTED + datetime.timedelta(days=2)
        assert screener.is_non_compliant(
            self._trace(), self._receipt([log]), after
        )

    def test_unscreened_token_not_flagged(self, screener):
        # ALT1 is not one of the paper's screened tokens.
        log = transfer_log(self.tokens.address_of("ALT1"), BAD, USER, 5)
        after = LISTED + datetime.timedelta(days=2)
        assert not screener.is_non_compliant(
            self._trace(), self._receipt([log]), after
        )

    def test_tron_any_transfer_flagged_after_designation(self, screener):
        log = transfer_log(self.tokens.address_of("TRON"), USER, USER, 5)
        after = LISTED + datetime.timedelta(days=2)
        assert screener.is_non_compliant(
            self._trace(), self._receipt([log]), after
        )
        assert not screener.is_non_compliant(
            self._trace(), self._receipt([log]), LISTED
        )

    def test_screen_block_collects_hashes(self, screener):
        factory = TransactionFactory()
        tx = factory.create(BAD, 0, [EthTransfer(USER, 1)], gwei(20), gwei(1))
        block = seal_block(
            number=1, slot=1, timestamp=0, parent_hash=derive_hash("sanc", "p"),
            fee_recipient=USER, gas_limit=30_000_000, gas_used=21_000,
            base_fee_per_gas=gwei(10), transactions=(tx,),
        )
        receipt = self._receipt(tx_hash=tx.tx_hash)
        trace = self._trace(
            [CallFrame(0, BAD, USER, 1, FRAME_INTERNAL)], tx_hash=tx.tx_hash
        )
        after = LISTED + datetime.timedelta(days=2)
        assert screener.screen_block(block, [receipt], [trace], after) == [
            tx.tx_hash
        ]
        assert screener.block_is_non_compliant(block, [receipt], [trace], after)
