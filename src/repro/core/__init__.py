"""PBS core: builders, relays, MEV-Boost, proposers, and the slot auction.

This package implements the Proposer-Builder Separation scheme the paper
measures: block builders assemble blocks from bundles, private order flow
and the public mempool; relays escrow blocks, enforce their announced
policies (builder access, OFAC compliance, MEV filtering — including the
gaps the paper uncovers), and serve the Flashbots relay data API; MEV-Boost
on the validator picks the highest bid across subscribed relays; and the
proposer signs the blinded header or falls back to local block building.
"""

from .auction import SlotAuction, SlotContext, SlotOutcome
from .epbs import MODE_EPBS, EnshrinedPBSAuction
from .builder import BlockBuilder, BuilderSubmission
from .mev_boost import BidSelection, MevBoostClient
from .policies import (
    BuilderAccess,
    CensorshipPolicy,
    MevFilterPolicy,
    RelayPolicy,
)
from .proposer import LocalBlockBuilder
from .relay import Relay
from .relay_api import (
    BuilderSubmissionRecord,
    DeliveredPayload,
    RelayDataStore,
    ValidatorRegistration,
)

__all__ = [
    "SlotAuction",
    "SlotContext",
    "SlotOutcome",
    "MODE_EPBS",
    "EnshrinedPBSAuction",
    "BlockBuilder",
    "BuilderSubmission",
    "BidSelection",
    "MevBoostClient",
    "BuilderAccess",
    "CensorshipPolicy",
    "MevFilterPolicy",
    "RelayPolicy",
    "LocalBlockBuilder",
    "Relay",
    "BuilderSubmissionRecord",
    "DeliveredPayload",
    "RelayDataStore",
    "ValidatorRegistration",
]
