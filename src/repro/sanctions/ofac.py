"""The dated OFAC sanctions list.

Entries carry the date OFAC published them; per the compliance guidance the
paper cites, an address only counts as sanctioned from the *day after*
publication (list updates carry no intraday timestamp).  The list also
tracks token-level designations (TRON, sanctioned November 2022).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from ..constants import MERGE_DATE, OFAC_UPDATE_DATES, TRON_SANCTION_DATE
from ..errors import ConfigError
from ..types import Address, derive_address

# Sizes of the simulated SDN batches; totals match the paper's 134 entries.
_INITIAL_BATCH_SIZE = 104  # listed before the merge (e.g. Tornado Cash, Aug 2022)
_NOV_2022_BATCH_SIZE = 18
_FEB_2023_BATCH_SIZE = 12


@dataclass(frozen=True)
class SanctionedEntry:
    """One SDN-listed Ethereum address and its publication date."""

    address: Address
    listed_date: datetime.date

    @property
    def effective_date(self) -> datetime.date:
        """First day the designation is enforceable (day after publication)."""
        return self.listed_date + datetime.timedelta(days=1)


class SanctionsList:
    """A dated list of sanctioned addresses and token designations."""

    def __init__(self) -> None:
        self._entries: list[SanctionedEntry] = []
        self._by_address: dict[Address, SanctionedEntry] = {}
        self._sanctioned_tokens: dict[str, datetime.date] = {}
        # Per-date memos: as-of queries run once per screened transaction
        # (and per builder per slot); the list changes a handful of times
        # over the whole study window.  Invalidated on every add.
        self._addresses_as_of: dict[datetime.date, frozenset[Address]] = {}
        self._tokens_as_of: dict[datetime.date, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, address: Address, listed_date: datetime.date) -> SanctionedEntry:
        if address in self._by_address:
            raise ConfigError(f"{address} is already on the list")
        entry = SanctionedEntry(address=address, listed_date=listed_date)
        self._entries.append(entry)
        self._by_address[address] = entry
        self._addresses_as_of.clear()
        return entry

    def add_token(self, symbol: str, listed_date: datetime.date) -> None:
        """Designate an entire token (all its transfers become reportable)."""
        if symbol in self._sanctioned_tokens:
            raise ConfigError(f"token {symbol} is already designated")
        self._sanctioned_tokens[symbol] = listed_date
        self._tokens_as_of.clear()

    def entries(self) -> list[SanctionedEntry]:
        return list(self._entries)

    def all_addresses(self) -> frozenset[Address]:
        return frozenset(self._by_address)

    def addresses_as_of(self, date: datetime.date) -> frozenset[Address]:
        """Addresses whose designation is effective on ``date`` (memoized)."""
        cached = self._addresses_as_of.get(date)
        if cached is None:
            cached = frozenset(
                entry.address
                for entry in self._entries
                if entry.effective_date <= date
            )
            self._addresses_as_of[date] = cached
        return cached

    def tokens_as_of(self, date: datetime.date) -> frozenset[str]:
        """Token designations effective on ``date`` (next-day rule applies)."""
        cached = self._tokens_as_of.get(date)
        if cached is None:
            cached = frozenset(
                symbol
                for symbol, listed in self._sanctioned_tokens.items()
                if listed + datetime.timedelta(days=1) <= date
            )
            self._tokens_as_of[date] = cached
        return cached

    def is_sanctioned(self, address: Address, date: datetime.date) -> bool:
        entry = self._by_address.get(address)
        return entry is not None and entry.effective_date <= date

    def listed_date_of(self, address: Address) -> datetime.date | None:
        entry = self._by_address.get(address)
        return entry.listed_date if entry else None

    def update_dates(self) -> list[datetime.date]:
        """Distinct publication dates, ascending (the list's update events)."""
        return sorted({entry.listed_date for entry in self._entries})


def build_ofac_timeline(
    initial_batch: int = _INITIAL_BATCH_SIZE,
    november_batch: int = _NOV_2022_BATCH_SIZE,
    february_batch: int = _FEB_2023_BATCH_SIZE,
) -> SanctionsList:
    """Build the study-window sanctions list with the real update cadence.

    One pre-merge batch (already effective at the merge), the 2022-11-08
    additions, the 2023-02-01 additions, and the TRON token designation.
    """
    sanctions = SanctionsList()
    pre_merge = MERGE_DATE - datetime.timedelta(days=30)
    for index in range(initial_batch):
        sanctions.add(derive_address("sanctioned-initial", index), pre_merge)
    for index in range(november_batch):
        sanctions.add(
            derive_address("sanctioned-nov22", index), OFAC_UPDATE_DATES[0]
        )
    for index in range(february_batch):
        sanctions.add(
            derive_address("sanctioned-feb23", index), OFAC_UPDATE_DATES[1]
        )
    sanctions.add_token("TRON", TRON_SANCTION_DATE)
    return sanctions
