"""Pre-forked multi-worker serving over ``SO_REUSEPORT``.

One Python process saturates one core; the dataset, its slot indexes and
the wire-encoding blobs are all immutable once built.  That combination
is exactly what the classic pre-fork model wants:

* the supervisor loads the dataset **once** (mmap-backed ``.npz``
  columns plus the interned index arrays and pre-rendered wire blobs),
  builds the :class:`~.service.QueryService`, and only then forks — so
  every worker shares those pages copy-on-write and startup cost is paid
  once, not N times;
* each worker binds its **own** listening socket to the same
  ``(host, port)`` with ``SO_REUSEPORT``, so the kernel load-balances
  incoming connections across workers with no userspace accept lock and
  no proxy hop;
* the supervisor restarts crashed workers with exponential backoff
  (reset once a worker proves stable), drains gracefully on
  SIGTERM/SIGINT, and announces ``READY <url> workers=<n>`` only after
  every worker's socket is accepting.

Response bytes are identical at any worker count: workers run the same
``QueryService`` object the single-process path serves.
"""

from __future__ import annotations

import asyncio
import os
import signal
import socket
import sys
import time

from .http import RelayHTTPServer
from .service import QueryService

#: A worker that lived at least this long gets its restart backoff reset.
STABLE_SECONDS = 5.0


def _reuseport_socket(host: str, port: int) -> socket.socket:
    if not hasattr(socket, "SO_REUSEPORT"):
        raise RuntimeError(
            "pre-fork serving requires SO_REUSEPORT (Linux/BSD); "
            "run with --workers 1 on this platform"
        )
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    return sock


class WorkerPool:
    """Supervisor for N forked serving workers sharing one port.

    ``serve_forever`` runs in the parent until SIGTERM/SIGINT (or
    :meth:`request_stop` from a signal-free context), supervising
    restarts; it must be called from the main thread of a process that
    has no running asyncio loop (workers each create their own loop
    after the fork).
    """

    def __init__(
        self,
        dataset,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        *,
        drain_seconds: float = 5.0,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        ready_timeout: float = 60.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not hasattr(os, "fork"):
            raise RuntimeError("pre-fork serving requires os.fork (POSIX)")
        self.dataset = dataset
        self.host = host
        self.workers = workers
        self.drain_seconds = drain_seconds
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.ready_timeout = ready_timeout
        # Build the service (indexes + wire blobs) BEFORE forking: the
        # expensive immutable state lands in pages every worker shares.
        self.service = QueryService(dataset)
        # The placeholder claims the port for the pool's lifetime.  It
        # never listens, so the kernel routes nothing to it; it resolves
        # port=0 to a concrete port and keeps non-REUSEPORT processes
        # from stealing the address between worker restarts.
        self._placeholder = _reuseport_socket(host, port)
        self.port = self._placeholder.getsockname()[1]
        self._children: dict[int, int] = {}  # pid -> slot
        self._spawn_times: dict[int, float] = {}  # pid -> monotonic spawn
        self._backoff: dict[int, float] = {}  # slot -> next restart delay
        self._restart_at: dict[int, float] = {}  # slot -> due time
        self._ready_pids: set[int] = set()
        self._ready_r: int | None = None
        self._ready_w: int | None = None
        self._death_r: int | None = None
        self._death_w: int | None = None
        self._stop = False
        self._announced = False
        self._ready_buf = b""

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_stop(self) -> None:
        self._stop = True

    # -- supervisor ----------------------------------------------------

    def serve_forever(self, announce=None, install_signal_handlers: bool = True) -> int:
        """Fork the workers, supervise until stopped; returns exit code.

        ``announce(url, workers)`` fires once, after every worker's
        listening socket is accepting connections.
        """
        self._ready_r, self._ready_w = os.pipe()
        os.set_blocking(self._ready_r, False)
        # Workers watch the death pipe's read end: when the supervisor
        # dies — even via SIGKILL, where no handler runs — the kernel
        # closes the last write end and every worker sees EOF and
        # drains.  No orphaned serving processes.
        self._death_r, self._death_w = os.pipe()
        previous = {}
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                previous[signum] = signal.signal(
                    signum, lambda *_: self.request_stop()
                )
        try:
            for slot in range(self.workers):
                self._spawn(slot)
            while not self._stop:
                self._drain_ready_pipe()
                self._reap()
                self._restart_due()
                if (
                    not self._announced
                    and len(self._children) == self.workers
                    and self._ready_pids.issuperset(self._children)
                ):
                    self._announced = True
                    if announce is not None:
                        announce(self.url, self.workers)
                time.sleep(0.05)
            return 0
        finally:
            self._shutdown()
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    def _spawn(self, slot: int) -> None:
        pid = os.fork()
        if pid == 0:
            # Child: never return into the supervisor's stack.
            status = 1
            try:
                status = self._worker_main(slot)
            except BaseException as error:  # noqa: BLE001
                print(
                    f"[worker {os.getpid()}] crashed: {error!r}",
                    file=sys.stderr,
                    flush=True,
                )
            finally:
                os._exit(status)
        self._children[pid] = slot
        self._spawn_times[pid] = time.monotonic()

    def _drain_ready_pipe(self) -> None:
        try:
            while True:
                chunk = os.read(self._ready_r, 4096)
                if not chunk:
                    break
                self._ready_buf += chunk
        except BlockingIOError:
            pass
        # Parse only newline-terminated tokens: a read boundary must not
        # truncate a pid into a different (wrong) pid.
        *lines, self._ready_buf = self._ready_buf.split(b"\n")
        for line in lines:
            if line.strip():
                self._ready_pids.add(int(line))

    def _reap(self) -> None:
        while self._children:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid == 0:
                break
            slot = self._children.pop(pid, None)
            self._ready_pids.discard(pid)
            spawned = self._spawn_times.pop(pid, 0.0)
            if slot is None or self._stop:
                continue
            lived = time.monotonic() - spawned
            if lived >= STABLE_SECONDS:
                self._backoff.pop(slot, None)
            delay = self._backoff.get(slot, self.backoff_base)
            self._backoff[slot] = min(delay * 2, self.backoff_cap)
            self._restart_at[slot] = time.monotonic() + delay
            print(
                f"[pool] worker {pid} (slot {slot}) died after {lived:.1f}s; "
                f"restarting in {delay:.1f}s",
                file=sys.stderr,
                flush=True,
            )

    def _restart_due(self) -> None:
        now = time.monotonic()
        for slot, due in list(self._restart_at.items()):
            if due <= now:
                del self._restart_at[slot]
                self._spawn(slot)

    def _shutdown(self) -> None:
        deadline = time.monotonic() + self.drain_seconds + 2.0
        for pid in self._children:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        while self._children and time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._children.clear()
                break
            if pid:
                self._children.pop(pid, None)
            else:
                time.sleep(0.05)
        for pid in list(self._children):
            try:
                os.kill(pid, signal.SIGKILL)
                os.waitpid(pid, 0)
            except (ProcessLookupError, ChildProcessError):
                pass
            self._children.pop(pid, None)
        for fd in (self._ready_r, self._ready_w, self._death_r, self._death_w):
            if fd is not None:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self._placeholder.close()

    # -- worker --------------------------------------------------------

    def _worker_main(self, slot: int) -> int:
        # The supervisor handles Ctrl-C for the whole foreground group;
        # workers only ever act on SIGTERM (from it, or an operator).
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        os.close(self._ready_r)
        os.close(self._death_w)
        self._placeholder.close()
        sock = _reuseport_socket(self.host, self.port)
        asyncio.run(self._worker_serve(sock))
        return 0

    async def _worker_serve(self, sock: socket.socket) -> None:
        server = RelayHTTPServer(self.service, self.host, self.port, sock=sock)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        # Supervisor death (EOF on the death pipe) also stops the worker.
        loop.add_reader(self._death_r, stop.set)
        os.write(self._ready_w, b"%d\n" % os.getpid())
        try:
            await stop.wait()
        finally:
            loop.remove_reader(self._death_r)
            await server.drain(self.drain_seconds)
            await server.close()


def serve_pool(
    dataset,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    *,
    announce=None,
    drain_seconds: float = 5.0,
) -> int:
    """Convenience wrapper: build the pool and serve until signalled."""
    pool = WorkerPool(
        dataset, host=host, port=port, workers=workers,
        drain_seconds=drain_seconds,
    )
    return pool.serve_forever(announce=announce)
