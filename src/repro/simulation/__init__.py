"""Scenario and world simulation.

``SimulationConfig`` + ``build_world``/``World.run`` produce a complete
simulated post-merge Ethereum with the PBS ecosystem of the paper's
measurement window: the eleven relays and their policies, the named builder
roster, staking-pool validators with a calibrated MEV-Boost adoption curve,
searchers, DeFi activity, sanctioned actors, and the documented incidents
(Manifold 2022-10-15, Eden's mispromise, the 2022-11-10 timestamp bug,
FTX/USDC volatility spikes, the December Binance->AnkrPool private flow).
"""

from .config import SimulationConfig
from .events import Timeline, default_timeline
from .segments import SegmentDelta, SegmentSpec, run_segment, segment_plan
from .world import World, build_world

__all__ = [
    "SimulationConfig",
    "Timeline",
    "default_timeline",
    "SegmentDelta",
    "SegmentSpec",
    "run_segment",
    "segment_plan",
    "World",
    "build_world",
]
