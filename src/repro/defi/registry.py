"""The protocol registry wiring DeFi into the execution engine.

Implements the :class:`~repro.chain.execution.ProtocolRegistry` interface:
the engine hands protocol actions (token transfers, swaps, liquidations)
here, and gets back event logs plus trace frames.

Forking is *lazy*: a fork materializes a component (token ledger, AMM
reserves, a lending market's positions) only when an action first touches
it, so the per-transaction speculative fork an execution context takes is
O(1) instead of O(components).  Pure-ETH transactions never touch the
DeFi substrate at all.  Set ``fork_eagerly`` on a root registry to restore
the old fork-everything behaviour (used as the benchmark baseline).
"""

from __future__ import annotations

from ..chain.receipts import Log
from ..chain.state import WorldState
from ..chain.traces import CallFrame
from ..chain.transaction import LiquidatePosition, SwapExact, TokenTransfer
from ..cow import CowDict
from ..cow import _TOMBSTONE as _COW_TOMBSTONE
from ..errors import DefiError
from ..types import Address
from .amm import AmmExchange
from .lending import LendingMarket
from .oracle import PriceOracle
from .tokens import TokenRegistry

_MISSING = object()


def _execute_action(
    registry: "DefiProtocols | LazyDefiFork",
    action: object,
    sender: Address,
) -> tuple[list[Log], list[CallFrame]]:
    """Shared action dispatch for every registry flavour.

    Token movements do not move ETH, so no trace frames are produced —
    matching mainnet, where sanctioned ERC-20 activity is visible only
    in logs (which is why the paper scans both logs and traces).
    """
    if isinstance(action, TokenTransfer):
        log = registry.tokens.transfer(
            action.token, sender, action.recipient, action.amount
        )
        return [log], []
    if isinstance(action, SwapExact):
        _, logs = registry.amm.swap(
            action.pool_id,
            sender,
            action.token_in,
            action.amount_in,
            action.min_amount_out,
            registry.tokens,
        )
        return logs, []
    if isinstance(action, LiquidatePosition):
        market = registry.market(action.market_id)
        if market is None:
            raise DefiError(f"unknown lending market {action.market_id}")
        _, logs = market.liquidate(
            sender, action.borrower, registry.oracle, registry.tokens
        )
        return logs, []
    raise DefiError(f"no protocol can execute {type(action).__name__}")


def _read_effective(registry, domain: str, key: object) -> object:
    """Current value for a cached read-set entry (None when absent).

    Domains mirror :mod:`repro.chain.exec_cache`: ``"t"`` token balances
    keyed by ``(symbol, holder)``, ``"r"`` AMM reserves keyed by pool id,
    ``"p:<market>"`` lending positions keyed by borrower.
    """
    if domain == "t":
        view: CowDict = registry.balances_view()
    elif domain == "r":
        view = registry.reserves_view()
    elif domain.startswith("p:"):
        positions = registry.positions_view(domain[2:])
        if positions is None:
            return None
        view = positions
    else:
        raise DefiError(f"unknown read domain {domain!r}")
    value = view.get(key, _MISSING)
    return None if value is _MISSING else value


def _apply_write(registry, domain: str, key: object, value: object) -> None:
    """Write one cached effect into this registry's local layer.

    ``value is None`` encodes a deletion; the tombstone lands in the same
    layer a committed speculative fork would have left it in, keeping
    replayed state bit-identical to direct execution.
    """
    if domain == "t":
        cow: CowDict = registry.tokens._balances
    elif domain == "r":
        cow = registry.amm._reserves
    elif domain.startswith("p:"):
        market = registry.market(domain[2:])
        if market is None:
            raise DefiError(f"unknown lending market {domain[2:]}")
        cow = market._positions
    else:
        raise DefiError(f"unknown write domain {domain!r}")
    cow._local[key] = _COW_TOMBSTONE if value is None else value


def _apply_writes(registry, writes) -> None:
    """Batch form of :func:`_apply_write` — one dispatch per domain.

    Replaying a cached variant applies every write of a transaction in one
    call, so resolving the target CowDict once per domain (instead of once
    per entry) is a measurable win on the hot replay path.
    """
    token_cow: CowDict | None = None
    reserve_cow: CowDict | None = None
    market_cows: dict[str, CowDict] | None = None
    for domain, key, value in writes:
        if domain == "t":
            cow = token_cow
            if cow is None:
                cow = token_cow = registry.tokens._balances
        elif domain == "r":
            cow = reserve_cow
            if cow is None:
                cow = reserve_cow = registry.amm._reserves
        elif domain.startswith("p:"):
            if market_cows is None:
                market_cows = {}
            cow = market_cows.get(domain)
            if cow is None:
                market = registry.market(domain[2:])
                if market is None:
                    raise DefiError(f"unknown lending market {domain[2:]}")
                cow = market_cows[domain] = market._positions
        else:
            raise DefiError(f"unknown write domain {domain!r}")
        cow._local[key] = _COW_TOMBSTONE if value is None else value


class DefiProtocols:
    """Token registry + AMM + lending markets behind one engine-facing API."""

    # Roots created with fork_eagerly=True hand out old-style eager forks.
    fork_eagerly = False

    def __init__(
        self,
        tokens: TokenRegistry,
        amm: AmmExchange,
        markets: dict[str, LendingMarket],
        oracle: PriceOracle,
        parent: "DefiProtocols | None" = None,
    ) -> None:
        self.tokens = tokens
        self.amm = amm
        self.markets = markets
        self.oracle = oracle  # read-only within a block; never forked
        self._parent = parent

    @classmethod
    def create(cls, oracle: PriceOracle) -> "DefiProtocols":
        """Create an empty root registry around an oracle."""
        tokens = TokenRegistry()
        amm = AmmExchange(tokens)
        return cls(tokens=tokens, amm=amm, markets={}, oracle=oracle)

    def add_market(self, market: LendingMarket) -> None:
        if market.market_id in self.markets:
            raise DefiError(f"market {market.market_id} already registered")
        self.markets[market.market_id] = market

    def market(self, market_id: str) -> LendingMarket | None:
        return self.markets.get(market_id)

    # -- engine interface --------------------------------------------------

    def execute_action(
        self,
        action: object,
        sender: Address,
        state: WorldState,
    ) -> tuple[list[Log], list[CallFrame]]:
        """Apply one protocol action; returns (logs, trace frames)."""
        return _execute_action(self, action, sender)

    # -- forking -----------------------------------------------------------

    def fork(self) -> "DefiProtocols | LazyDefiFork":
        if not self.fork_eagerly:
            return LazyDefiFork(parent=self)
        tokens = self.tokens.fork()
        amm = self.amm.fork(tokens)
        markets = {
            market_id: market.fork(tokens)
            for market_id, market in self.markets.items()
        }
        child = DefiProtocols(
            tokens=tokens,
            amm=amm,
            markets=markets,
            oracle=self.oracle,
            parent=self,
        )
        child.fork_eagerly = True
        return child

    def commit(self) -> None:
        if self._parent is None:
            raise DefiError("cannot commit a root DefiProtocols")
        self.tokens.commit()
        self.amm.commit()
        for market in self.markets.values():
            market.commit()

    # -- execution-cache hooks (see repro.chain.exec_cache) ----------------

    def balances_view(self) -> CowDict:
        return self.tokens._balances

    def reserves_view(self) -> CowDict:
        return self.amm._reserves

    def positions_view(self, market_id: str) -> CowDict | None:
        market = self.markets.get(market_id)
        return None if market is None else market._positions

    def token_specs(self) -> dict:
        return self.tokens._tokens

    def pool_specs(self) -> dict:
        return self.amm._specs

    def market_meta(self, market_id: str) -> LendingMarket | None:
        return self.markets.get(market_id)

    def read_effective(self, domain: str, key: object) -> object:
        return _read_effective(self, domain, key)

    def apply_write(self, domain: str, key: object, value: object) -> None:
        _apply_write(self, domain, key, value)

    def apply_writes(self, writes) -> None:
        _apply_writes(self, writes)

    def recording_fork(self, log):
        from .recording import RecordingDefiProtocols

        return RecordingDefiProtocols(parent=self, log=log)


class LazyDefiFork:
    """A copy-on-write fork of the DeFi substrate, materialized on demand.

    Satisfies the same :class:`~repro.chain.execution.ProtocolRegistry`
    interface as :class:`DefiProtocols`.  Components fork from the parent
    on first touch; :meth:`commit` merges back only what materialized, so
    a speculative block that never swaps a token costs nothing here.
    """

    __slots__ = ("_parent", "oracle", "_tokens", "_amm", "_markets")

    def __init__(self, parent) -> None:
        self._parent = parent
        self.oracle = parent.oracle
        self._tokens: TokenRegistry | None = None
        self._amm: AmmExchange | None = None
        self._markets: dict[str, LendingMarket] = {}

    # -- lazily materialized components ------------------------------------

    @property
    def tokens(self) -> TokenRegistry:
        if self._tokens is None:
            self._tokens = self._parent.tokens.fork()
        return self._tokens

    @property
    def amm(self) -> AmmExchange:
        if self._amm is None:
            self._amm = self._parent.amm.fork(self.tokens)
        return self._amm

    def market(self, market_id: str) -> LendingMarket | None:
        market = self._markets.get(market_id)
        if market is None:
            base = self._parent.market(market_id)
            if base is None:
                return None
            market = base.fork(self.tokens)
            self._markets[market_id] = market
        return market

    # -- engine interface --------------------------------------------------

    def execute_action(
        self,
        action: object,
        sender: Address,
        state: WorldState,
    ) -> tuple[list[Log], list[CallFrame]]:
        return _execute_action(self, action, sender)

    def fork(self) -> "LazyDefiFork":
        return LazyDefiFork(parent=self)

    def commit(self) -> None:
        if self._tokens is not None:
            self._tokens.commit()
        if self._amm is not None:
            self._amm.commit()
        for market in self._markets.values():
            market.commit()

    # -- execution-cache hooks ---------------------------------------------

    def balances_view(self) -> CowDict:
        if self._tokens is not None:
            return self._tokens._balances
        return self._parent.balances_view()

    def reserves_view(self) -> CowDict:
        if self._amm is not None:
            return self._amm._reserves
        return self._parent.reserves_view()

    def positions_view(self, market_id: str) -> CowDict | None:
        market = self._markets.get(market_id)
        if market is not None:
            return market._positions
        return self._parent.positions_view(market_id)

    def token_specs(self) -> dict:
        return self._parent.token_specs()

    def pool_specs(self) -> dict:
        return self._parent.pool_specs()

    def market_meta(self, market_id: str) -> LendingMarket | None:
        market = self._markets.get(market_id)
        if market is not None:
            return market
        return self._parent.market_meta(market_id)

    def read_effective(self, domain: str, key: object) -> object:
        return _read_effective(self, domain, key)

    def apply_write(self, domain: str, key: object, value: object) -> None:
        _apply_write(self, domain, key, value)

    def apply_writes(self, writes) -> None:
        _apply_writes(self, writes)

    def recording_fork(self, log):
        from .recording import RecordingDefiProtocols

        return RecordingDefiProtocols(parent=self, log=log)
