"""Consensus-layer (Beacon chain) substrate.

Implements the pieces of Ethereum PoS the paper relies on: 12-second slots
grouped into 32-slot epochs, a validator registry with 32-ETH staking and
entity (staking-pool) attribution, seeded proposer election with epoch
lookahead, per-block beacon rewards, and the beacon chain record of
proposed/missed slots.
"""

from .builders import (
    BuilderRecord,
    BuilderRegistry,
    DepositEvent,
    EpbsDataset,
    EpbsLedger,
    EpbsSlotRecord,
    SlashingEvent,
    builder_withdrawal_credentials,
)
from .chain import BeaconBlockRecord, BeaconChain
from .rewards import RewardLedger
from .schedule import ProposerSchedule
from .validator import Validator, ValidatorRegistry

__all__ = [
    "BeaconBlockRecord",
    "BeaconChain",
    "BuilderRecord",
    "BuilderRegistry",
    "DepositEvent",
    "EpbsDataset",
    "EpbsLedger",
    "EpbsSlotRecord",
    "RewardLedger",
    "ProposerSchedule",
    "SlashingEvent",
    "Validator",
    "ValidatorRegistry",
    "builder_withdrawal_credentials",
]
