"""Searcher agents.

Searchers watch a slot's state (mempool, pools, lending markets, oracle),
plan MEV opportunities, and emit bundles bidding for inclusion through
coinbase tips.  Their skill parameter models how professionalized they are
— which opportunities they spot — and their bid fraction models the
competitiveness of the builder market they sell into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..chain.state import WorldState
from ..chain.transaction import (
    LiquidatePosition,
    SwapExact,
    TipCoinbase,
    Transaction,
    TransactionFactory,
    ORIGIN_BUNDLE,
)
from ..defi.amm import AmmExchange
from ..defi.lending import LendingMarket
from ..defi.oracle import PriceOracle
from ..defi.tokens import TokenRegistry
from ..types import Address, Wei, gwei
from .arbitrage import find_arbitrage_cycles, plan_cycle_arbitrage
from .bundles import (
    Bundle,
    KIND_ARBITRAGE,
    KIND_LIQUIDATION,
    KIND_SANDWICH,
    make_bundle,
)
from .liquidation import plan_liquidations
from .sandwich import plan_sandwich

_PRIORITY_FEE = gwei(1)


@dataclass
class SlotView:
    """Read-only view of the world a searcher sees while planning a slot."""

    slot: int
    base_fee: Wei
    state: WorldState
    amm: AmmExchange
    markets: dict[str, LendingMarket]
    oracle: PriceOracle
    tokens: TokenRegistry
    mempool_txs: list[Transaction]
    rng: np.random.Generator
    tx_factory: TransactionFactory
    # Local nonce allocation on top of the canonical state, so a searcher
    # can craft several transactions per slot without colliding.
    _nonce_offsets: dict[Address, int] = field(default_factory=dict)
    # Shared memo for planning work that is identical across searchers
    # looking at the same slot (e.g. the liquidation scan).
    _plan_cache: dict = field(default_factory=dict)

    def next_nonce(self, address: Address) -> int:
        offset = self._nonce_offsets.get(address, 0)
        self._nonce_offsets[address] = offset + 1
        return self.state.nonce_of(address) + offset

    def max_fee(self) -> Wei:
        return self.base_fee * 2 + _PRIORITY_FEE


class Searcher:
    """Base searcher: identity, funding targets, and bidding behaviour."""

    def __init__(
        self,
        name: str,
        address: Address,
        skill: float = 0.8,
        bid_fraction: float = 0.85,
        builders: tuple[str, ...] = (),
    ) -> None:
        if not 0.0 <= skill <= 1.0:
            raise ValueError(f"skill must be in [0, 1], got {skill}")
        if not 0.0 <= bid_fraction <= 1.0:
            raise ValueError(f"bid fraction must be in [0, 1], got {bid_fraction}")
        self.name = name
        self.address = address
        self.skill = skill
        self.bid_fraction = bid_fraction
        self.builders = builders

    def find_bundles(self, view: SlotView) -> list[Bundle]:
        """Plan this slot's opportunities; overridden per searcher type."""
        raise NotImplementedError

    def _spots(self, view: SlotView) -> bool:
        """Whether this searcher notices a given opportunity (skill gate)."""
        return bool(view.rng.random() < self.skill)

    def _bid_for(self, profit_wei: Wei) -> Wei:
        return max(0, int(profit_wei * self.bid_fraction))


class SandwichSearcher(Searcher):
    """Front- and back-runs large victim swaps spotted in the mempool."""

    def __init__(
        self,
        name: str,
        address: Address,
        min_victim_amount: int = 10**18,
        min_profit_wei: Wei = 10**15,
        **kwargs,
    ) -> None:
        super().__init__(name, address, **kwargs)
        self.min_victim_amount = min_victim_amount
        self.min_profit_wei = min_profit_wei

    def find_bundles(self, view: SlotView) -> list[Bundle]:
        bundles: list[Bundle] = []
        for victim_tx in view.mempool_txs:
            swap = _single_swap_action(victim_tx)
            if swap is None or swap.token_in != "WETH":
                continue
            if swap.amount_in < self.min_victim_amount:
                continue
            if not self._spots(view):
                continue
            pool = view.amm.pool(swap.pool_id)
            plan = plan_sandwich(
                pool,
                swap.amount_in,
                swap.min_amount_out,
                swap.token_in,
                min_profit=self.min_profit_wei,
            )
            if plan is None:
                continue
            bid = self._bid_for(plan.profit)
            front = view.tx_factory.create(
                self.address,
                view.next_nonce(self.address),
                [
                    SwapExact(
                        plan.pool_id,
                        plan.token_in,
                        plan.front_amount_in,
                        plan.front_amount_out,
                    )
                ],
                view.max_fee(),
                _PRIORITY_FEE,
                origin=ORIGIN_BUNDLE,
                created_slot=view.slot,
            )
            back = view.tx_factory.create(
                self.address,
                view.next_nonce(self.address),
                [
                    SwapExact(
                        plan.pool_id,
                        plan.token_out,
                        plan.front_amount_out,
                        # Require at least break-even plus the bid.
                        plan.front_amount_in,
                    ),
                    TipCoinbase(bid),
                ],
                view.max_fee(),
                _PRIORITY_FEE,
                origin=ORIGIN_BUNDLE,
                created_slot=view.slot,
            )
            bundles.append(
                make_bundle(
                    self.name,
                    [front, victim_tx, back],
                    KIND_SANDWICH,
                    expected_profit_wei=plan.profit,
                    bid_wei=bid,
                    conflict_key=f"sandwich:{victim_tx.tx_hash}",
                )
            )
        return bundles


class ArbitrageSearcher(Searcher):
    """Exploits cross-pool price discrepancies with cyclic swaps."""

    def __init__(
        self,
        name: str,
        address: Address,
        min_profit_wei: Wei = 10**15,
        max_bundles_per_slot: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(name, address, **kwargs)
        self.min_profit_wei = min_profit_wei
        self.max_bundles_per_slot = max_bundles_per_slot
        self._cycles: list[tuple[str, ...]] | None = None

    def find_bundles(self, view: SlotView) -> list[Bundle]:
        if self._cycles is None:
            self._cycles = find_arbitrage_cycles(view.amm)
        budget = view.tokens.balance_of("WETH", self.address)
        if budget <= 0:
            return []
        plans = []
        for cycle in self._cycles:
            if not self._spots(view):
                continue
            plan = plan_cycle_arbitrage(
                view.amm,
                cycle,
                max_input=budget,
                min_profit=self.min_profit_wei,
            )
            if plan is not None:
                plans.append(plan)
        plans.sort(key=lambda plan: plan.profit, reverse=True)

        bundles: list[Bundle] = []
        for plan in plans[: self.max_bundles_per_slot]:
            bid = self._bid_for(plan.profit)
            actions = [
                SwapExact(pool_id, token_in, amount_in, amount_out)
                for pool_id, token_in, amount_in, amount_out in plan.hops
            ]
            actions.append(TipCoinbase(bid))
            tx = view.tx_factory.create(
                self.address,
                view.next_nonce(self.address),
                actions,
                view.max_fee(),
                _PRIORITY_FEE,
                origin=ORIGIN_BUNDLE,
                created_slot=view.slot,
            )
            cycle_key = "->".join(hop[0] for hop in plan.hops)
            bundles.append(
                make_bundle(
                    self.name,
                    [tx],
                    KIND_ARBITRAGE,
                    expected_profit_wei=plan.profit,
                    bid_wei=bid,
                    conflict_key=f"arb:{cycle_key}",
                )
            )
        return bundles


class LiquidationSearcher(Searcher):
    """Liquidates undercollateralized lending positions."""

    def __init__(
        self,
        name: str,
        address: Address,
        min_bonus_wei: Wei = 10**15,
        **kwargs,
    ) -> None:
        super().__init__(name, address, **kwargs)
        self.min_bonus_wei = min_bonus_wei

    def find_bundles(self, view: SlotView) -> list[Bundle]:
        bundles: list[Bundle] = []
        # Every liquidation searcher scans the same market snapshot, so the
        # (deterministic) plan list is computed once per slot and shared.
        cache_key = ("liquidations", self.min_bonus_wei)
        plans = view._plan_cache.get(cache_key)
        if plans is None:
            plans = plan_liquidations(
                view.markets,
                view.oracle,
                view.tokens,
                min_bonus_wei=self.min_bonus_wei,
            )
            view._plan_cache[cache_key] = plans
        for plan in plans:
            if not self._spots(view):
                continue
            balance = view.tokens.balance_of(plan.debt_token, self.address)
            if balance < plan.debt_amount:
                continue  # cannot fund the repayment
            bid = self._bid_for(plan.expected_bonus_wei)
            tx = view.tx_factory.create(
                self.address,
                view.next_nonce(self.address),
                [
                    LiquidatePosition(plan.market_id, plan.borrower),
                    TipCoinbase(bid),
                ],
                view.max_fee(),
                _PRIORITY_FEE,
                origin=ORIGIN_BUNDLE,
                created_slot=view.slot,
            )
            bundles.append(
                make_bundle(
                    self.name,
                    [tx],
                    KIND_LIQUIDATION,
                    expected_profit_wei=plan.expected_bonus_wei,
                    bid_wei=bid,
                    conflict_key=f"liq:{plan.market_id}:{plan.borrower}",
                )
            )
        return bundles


def _single_swap_action(tx: Transaction) -> SwapExact | None:
    """The transaction's swap, if it is a plain single-swap transaction."""
    swaps = [action for action in tx.actions if isinstance(action, SwapExact)]
    if len(swaps) != 1:
        return None
    return swaps[0]
