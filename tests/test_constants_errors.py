"""Tests for chain constants and the error hierarchy."""

import datetime

import pytest

from repro import constants, errors


class TestConstants:
    def test_study_window(self):
        assert constants.STUDY_NUM_DAYS == 198
        assert constants.MERGE_DATE == datetime.date(2022, 9, 15)
        assert constants.STUDY_END_DATE == datetime.date(2023, 3, 31)

    def test_block_numbers_match_paper(self):
        assert constants.MERGE_BLOCK_NUMBER == 15_537_394
        assert constants.STUDY_END_BLOCK_NUMBER == 16_950_602
        assert constants.EDEN_MISPROMISE_BLOCK_NUMBER == 15_703_347

    def test_day_index_round_trip(self):
        for offset in (0, 57, 197):
            date = constants.date_of_day(offset)
            assert constants.day_index(date) == offset

    def test_event_dates_inside_window(self):
        for date in (
            constants.FTX_BANKRUPTCY_DATE,
            constants.USDC_DEPEG_DATE,
            constants.MANIFOLD_INCIDENT_DATE,
            constants.NOV10_TIMESTAMP_BUG_DATE,
            *constants.OFAC_UPDATE_DATES,
        ):
            assert constants.MERGE_DATE <= date <= constants.STUDY_END_DATE

    def test_gas_constants(self):
        assert constants.TARGET_BLOCK_GAS * 2 == constants.MAX_BLOCK_GAS
        assert constants.ELASTICITY_MULTIPLIER == 2

    def test_screened_tokens_match_paper(self):
        assert set(constants.SCREENED_TOKENS) == {
            "WETH", "USDC", "DAI", "USDT", "WBTC",
        }
        assert constants.TRON_TOKEN_SYMBOL == "TRON"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    @pytest.mark.parametrize(
        "child,parent",
        [
            (errors.ExecutionError, errors.ChainError),
            (errors.InsufficientBalanceError, errors.ExecutionError),
            (errors.NonceError, errors.ExecutionError),
            (errors.SwapError, errors.DefiError),
            (errors.LiquidationError, errors.DefiError),
            (errors.RelayError, errors.PBSError),
            (errors.BuilderRejectedError, errors.RelayError),
            (errors.MissingPayloadError, errors.RelayError),
        ],
    )
    def test_subsystem_nesting(self, child, parent):
        assert issubclass(child, parent)

    def test_catchable_as_library_error(self):
        with pytest.raises(errors.ReproError):
            raise errors.SwapError("nope")
