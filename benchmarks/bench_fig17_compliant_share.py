"""Figure 17: share of PBS blocks from OFAC-compliant relays."""

import statistics

from repro.analysis import daily_compliant_relay_share
from repro.analysis.report import render_series

from paper_reference import PAPER_CENSORSHIP, compare_line
from reporting import emit


def test_fig17_compliant_relay_share(study, benchmark):
    series = benchmark(daily_compliant_relay_share, study)

    early = statistics.mean(series.values[:30])
    late = statistics.mean(series.values[-20:])
    lines = [
        render_series(series),
        compare_line(
            "compliant share, first month", early,
            PAPER_CENSORSHIP["compliant share early"],
        ),
        compare_line(
            "compliant share, late March", late,
            PAPER_CENSORSHIP["compliant share late"],
        ),
    ]
    emit("fig17_compliant_share", "\n".join(lines))

    # Shape: censoring relays produce >80% of PBS blocks initially and
    # decline toward (but remain a large minority at) the end of March.
    assert early > 0.7
    assert late < early - 0.2
    assert late > 0.15
