"""Declarative fault injection and exact-detection scenario running.

A :class:`Scenario` perturbs a freshly built world with a list of
:class:`FaultSpec` entries (validation outage windows, inflated
internal-builder bids, MEV-filter miss-rate spikes, sanctions-lag
overrides, dropped payloads, builder crashes), runs it, and then asserts
that the invariant oracles plus the detection pass flag **exactly** the
injected anomalies: every expected detection key must be new relative to
the unperturbed baseline (or strictly larger, for counting metrics), and
no unexpected key may appear.

Scenarios are plain dataclasses and also load from YAML, so new faults
can be added declaratively (see DESIGN.md §7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..beacon.builders import SLASH_REASON_RENEGING, SLASH_REASON_WITHHELD
from ..constants import MERGE_DATE, MERGE_SLOT
from ..core.auction import MODE_FALLBACK
from ..core.epbs import EnshrinedPBSAuction
from ..core.policies import MevFilterPolicy
from ..datasets.collector import StudyDataset, collect_study_dataset
from ..errors import ScenarioError
from ..perf.artifacts import config_content_hash
from ..simulation.config import SimulationConfig, small_test_config
from ..simulation.world import build_world
from ..types import Wei, ether
from .oracles import (
    KIND_INTERNAL_MISPROMISE,
    KIND_SANCTIONS_LAG,
    KIND_VALIDATION_OUTAGE,
    OracleReport,
    run_oracles,
)

# Fault kinds (the scenario vocabulary).
FAULT_VALIDATION_OUTAGE = "validation-outage"
FAULT_INTERNAL_MISPROMISE = "internal-builder-mispromise"
FAULT_MEV_FILTER_MISS = "mev-filter-miss"
FAULT_SANCTIONS_LAG = "sanctions-lag"
FAULT_DROPPED_PAYLOAD = "dropped-payload"
FAULT_BUILDER_CRASH = "builder-crash"
# ePBS faults (require ``regime="epbs"``): a staked builder withholding
# its committed payload, a builder grossly reneging on its bid against
# collateral, and payload-timeliness-committee equivocation.
FAULT_WITHHELD_PAYLOAD = "withheld-payload"
FAULT_BID_RENEGING = "bid-reneging"
FAULT_PTC_EQUIVOCATION = "ptc-equivocation"

FAULT_KINDS = frozenset(
    {
        FAULT_VALIDATION_OUTAGE,
        FAULT_INTERNAL_MISPROMISE,
        FAULT_MEV_FILTER_MISS,
        FAULT_SANCTIONS_LAG,
        FAULT_DROPPED_PAYLOAD,
        FAULT_BUILDER_CRASH,
        FAULT_WITHHELD_PAYLOAD,
        FAULT_BID_RENEGING,
        FAULT_PTC_EQUIVOCATION,
    }
)

#: Claims this many times the delivered value (or over the absolute floor)
#: count as *gross* overpromises — the detection signal for exploit-grade
#: mispromises, excluding the benign ~0.2% optimistic overclaims.
GROSS_OVERPROMISE_RATIO = 1.5
GROSS_OVERPROMISE_FLOOR_WEI: Wei = 10**16  # 0.01 ETH


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``target`` names the relay (or ``"*"`` for all relays with
    ``dropped-payload``, or the builder with ``builder-crash``);
    ``builder`` optionally names the exploiting builder for the
    claim-inflating faults; ``day`` is the study-day index the fault
    fires on (``mev-filter-miss`` and ``sanctions-lag`` apply to the
    whole run).
    """

    kind: str
    target: str
    day: int = 0
    rate: float = 1.0
    lag_days: int = 90
    claim_eth: float = 2.0
    builder: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ScenarioError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}"
            )

    def detection_key(self) -> tuple[str, str]:
        """The (kind, target) pair detection must surface for this fault."""
        return (self.kind, self.target)


@dataclass
class Scenario:
    """A named perturbation of a seeded run."""

    name: str
    description: str
    faults: tuple[FaultSpec, ...]
    config_overrides: dict[str, Any] = field(default_factory=dict)

    def expected_keys(self) -> frozenset[tuple[str, str]]:
        return frozenset(spec.detection_key() for spec in self.faults)


def scenario_from_dict(data: dict[str, Any]) -> Scenario:
    """Build a scenario from a plain dict (the YAML document shape)."""
    try:
        name = data["name"]
        fault_dicts = data["faults"]
    except KeyError as exc:
        raise ScenarioError(f"scenario missing required field {exc}") from None
    if not fault_dicts:
        raise ScenarioError(f"scenario {name!r} injects no faults")
    known = {f.name for f in FaultSpec.__dataclass_fields__.values()}
    faults = []
    for entry in fault_dicts:
        unknown = sorted(set(entry) - known)
        if unknown:
            raise ScenarioError(
                f"scenario {name!r}: unknown fault field(s) {unknown}"
            )
        faults.append(FaultSpec(**entry))
    return Scenario(
        name=name,
        description=data.get("description", ""),
        faults=tuple(faults),
        config_overrides=dict(data.get("config_overrides", {})),
    )


def scenarios_from_yaml(source: str | Path) -> list[Scenario]:
    """Load scenarios from YAML text or a ``.yml``/``.yaml`` file path.

    Accepts either a top-level list of scenario documents or a mapping
    with a ``scenarios:`` key.
    """
    import yaml

    text = source
    if isinstance(source, Path):
        text = source.read_text()
    loaded = yaml.safe_load(text)
    if isinstance(loaded, dict):
        loaded = loaded.get("scenarios", [])
    if not isinstance(loaded, list):
        raise ScenarioError("YAML must hold a list of scenarios")
    return [scenario_from_dict(entry) for entry in loaded]


# ---------------------------------------------------------------------------
# Fault application
# ---------------------------------------------------------------------------


def _relay_or_raise(world, name: str):
    relay = world.relays.get(name)
    if relay is None:
        raise ScenarioError(
            f"unknown relay {name!r}; have {sorted(world.relays)}"
        )
    return relay


def _builder_or_raise(world, name: str):
    builder = world.builders.get(name)
    if builder is None:
        raise ScenarioError(
            f"unknown builder {name!r}; have {sorted(world.builders)[:10]}..."
        )
    return builder


def _install_claim_inflation(
    world, builder_name: str, day: int, relay_name: str, claim_wei: Wei
) -> None:
    """Make ``builder_name`` submit an exploit-grade claim to one relay.

    Chains over any pre-existing ``claim_inflation`` hook so scenario
    faults compose with the seeded incidents.
    """
    builder = _builder_or_raise(world, builder_name)
    previous = builder.claim_inflation

    def _inflate(ctx, payment, _prev=previous, _day=day,
                 _relay=relay_name, _claim=claim_wei):
        claims = dict(_prev(ctx, payment)) if _prev is not None else {}
        if ctx.day == _day:
            claims[_relay] = max(int(payment * 50), _claim)
        return claims

    builder.claim_inflation = _inflate
    builder.claim_inflation_days = builder.claim_inflation_days | {day}
    builder.claim_inflation_relays = tuple(
        sorted(set(builder.claim_inflation_relays) | {relay_name})
    )


def _require_epbs(world, kind: str) -> None:
    if world.config.regime != "epbs":
        raise ScenarioError(
            f"{kind} faults need regime='epbs' "
            f"(world runs {world.config.regime!r}); add "
            "config_overrides={'regime': 'epbs'} to the scenario"
        )


def apply_fault(world, spec: FaultSpec) -> None:
    """Perturb a built (not yet run) world with one fault."""
    if spec.kind == FAULT_VALIDATION_OUTAGE:
        relay = _relay_or_raise(world, spec.target)
        relay.validation_outage_days = relay.validation_outage_days | {spec.day}
        _install_claim_inflation(
            world,
            spec.builder or "Builder 3",
            spec.day,
            spec.target,
            ether(spec.claim_eth),
        )
    elif spec.kind == FAULT_INTERNAL_MISPROMISE:
        relay = _relay_or_raise(world, spec.target)
        builder_name = spec.builder or next(iter(sorted(relay.internal_builders)), "")
        if builder_name not in relay.internal_builders:
            raise ScenarioError(
                f"{builder_name!r} is not an internal builder of "
                f"{spec.target} ({sorted(relay.internal_builders)})"
            )
        relay.validates_internal_builders = False
        _install_claim_inflation(
            world, builder_name, spec.day, spec.target, ether(spec.claim_eth)
        )
    elif spec.kind == FAULT_MEV_FILTER_MISS:
        relay = _relay_or_raise(world, spec.target)
        if relay.policy.mev_filter is not MevFilterPolicy.FRONTRUNNING:
            raise ScenarioError(
                f"{spec.target} announces no front-running filter to degrade"
            )
        relay.mev_filter_miss_rate = spec.rate
    elif spec.kind == FAULT_SANCTIONS_LAG:
        relay = _relay_or_raise(world, spec.target)
        if not relay.policy.is_censoring:
            raise ScenarioError(
                f"{spec.target} is not compliant; a stale OFAC copy changes "
                "nothing"
            )
        relay.sanctions_lag_days = spec.lag_days
    elif spec.kind == FAULT_DROPPED_PAYLOAD:
        bpd = world.config.blocks_per_day
        slots = frozenset(
            MERGE_SLOT + spec.day * bpd + index for index in range(bpd)
        )
        targets = (
            list(world.relays.values())
            if spec.target == "*"
            else [_relay_or_raise(world, spec.target)]
        )
        for relay in targets:
            relay.drop_payload_slots = relay.drop_payload_slots | slots
    elif spec.kind == FAULT_BUILDER_CRASH:
        builder = _builder_or_raise(world, spec.builder or spec.target)
        builder.crash_days = builder.crash_days | {spec.day}
    elif spec.kind == FAULT_WITHHELD_PAYLOAD:
        _require_epbs(world, spec.kind)
        builder = _builder_or_raise(world, spec.builder or spec.target)
        builder.withhold_days = builder.withhold_days | {spec.day}
        builder.withhold_claim_wei = max(
            builder.withhold_claim_wei, ether(spec.claim_eth)
        )
    elif spec.kind == FAULT_BID_RENEGING:
        _require_epbs(world, spec.kind)
        builder = _builder_or_raise(world, spec.builder or spec.target)
        builder.renege_days = builder.renege_days | {spec.day}
        builder.renege_claim_wei = max(
            builder.renege_claim_wei, ether(spec.claim_eth)
        )
    elif spec.kind == FAULT_PTC_EQUIVOCATION:
        _require_epbs(world, spec.kind)
        auction = world.auction
        if not isinstance(auction, EnshrinedPBSAuction):
            raise ScenarioError(
                "ptc-equivocation needs an EnshrinedPBSAuction world"
            )
        auction.ptc_equivocation_days = (
            auction.ptc_equivocation_days | {spec.day}
        )
        auction.ptc_equivocation_rate = spec.rate
    else:  # pragma: no cover - guarded by FaultSpec.__post_init__
        raise ScenarioError(f"unhandled fault kind {spec.kind!r}")


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DetectedAnomaly:
    """One anomaly the detection pass surfaced from run data."""

    kind: str
    target: str
    metric: float
    evidence: str


def _gross_overpromises(world, dataset: StudyDataset) -> list[DetectedAnomaly]:
    """Exploit-grade promised-vs-delivered gaps, per relay, attributed."""
    builders_by_pubkey = {
        pubkey: builder
        for builder in world.builders.values()
        for pubkey in builder.pubkeys
    }
    counts: dict[tuple[str, str], list[str]] = {}
    for obs in dataset.blocks:
        if not obs.claimed_by_relay:
            continue
        delivered = obs.delivered_value_wei
        threshold = max(
            int(delivered * GROSS_OVERPROMISE_RATIO),
            delivered + GROSS_OVERPROMISE_FLOOR_WEI,
        )
        day = (obs.date - MERGE_DATE).days
        builder = builders_by_pubkey.get(obs.builder_pubkey)
        builder_name = builder.name if builder else "<unknown>"
        for relay_name, claimed in obs.claimed_by_relay.items():
            if claimed <= threshold:
                continue
            relay = world.relays.get(relay_name)
            if relay is not None and day in relay.validation_outage_days:
                key = (KIND_VALIDATION_OUTAGE, relay_name)
            elif (
                relay is not None
                and builder_name in relay.internal_builders
                and not relay.validates_internal_builders
            ):
                key = (KIND_INTERNAL_MISPROMISE, relay_name)
            else:
                # Unattributable exploit-grade overpromise: surfaced under
                # its own kind so the exactness check fails loudly.
                key = ("gross-overpromise", relay_name)
            counts.setdefault(key, []).append(
                f"block {obs.number}: {claimed} promised vs {delivered} "
                f"delivered by {builder_name}"
            )
    return [
        DetectedAnomaly(
            kind=kind,
            target=target,
            metric=float(len(evidence)),
            evidence="; ".join(evidence[:3]),
        )
        for (kind, target), evidence in counts.items()
    ]


def _filter_misses(world, dataset: StudyDataset) -> list[DetectedAnomaly]:
    """Sandwich-carrying blocks a filter-announcing relay accepted.

    Reads the relay's own filter-miss trace
    (:attr:`~repro.core.relay.Relay.filter_missed_slots`): slots where the
    front-running filter detected a sandwich but the miss draw admitted
    it anyway.  Relay escrow is dropped once each slot resolves, so this
    ground-truth trace is the only durable record of misses on blocks
    that lost the auction elsewhere — the canonical delivered sandwiches
    the paper counts are a subset of it.
    """
    found: list[DetectedAnomaly] = []
    for relay_name, relay in world.relays.items():
        if relay.policy.mev_filter is not MevFilterPolicy.FRONTRUNNING:
            continue
        count = len(relay.filter_missed_slots)
        if count:
            found.append(
                DetectedAnomaly(
                    kind=FAULT_MEV_FILTER_MISS,
                    target=relay_name,
                    metric=float(count),
                    evidence=(
                        f"{count} sandwich-carrying submission(s) accepted "
                        f"by {relay_name} despite its front-running filter"
                    ),
                )
            )
    return found


def _dropped_payloads(world) -> list[DetectedAnomaly]:
    """Slots that fell back to local production inside drop windows."""
    drop_sets = {
        name: relay.drop_payload_slots
        for name, relay in world.relays.items()
        if relay.drop_payload_slots
    }
    if not drop_sets:
        return []
    all_slots = frozenset().union(*drop_sets.values())
    fallbacks = sum(
        1
        for rec in world.slot_records
        if rec.slot in all_slots and rec.mode == MODE_FALLBACK
    )
    if not fallbacks:
        return []
    distinct = set(drop_sets.values())
    if len(drop_sets) == len(world.relays) and len(distinct) == 1:
        target = "*"
    else:
        target = ",".join(sorted(drop_sets))
    return [
        DetectedAnomaly(
            kind=FAULT_DROPPED_PAYLOAD,
            target=target,
            metric=float(fallbacks),
            evidence=(
                f"{fallbacks} slot(s) fell back to local building inside "
                "payload-drop windows"
            ),
        )
    ]


def _builder_crashes(world) -> list[DetectedAnomaly]:
    """Crash days on which a builder went completely silent across relays."""
    bpd = world.config.blocks_per_day
    found: list[DetectedAnomaly] = []
    for builder in world.builders.values():
        if not builder.crash_days:
            continue
        pubkeys = set(builder.pubkeys)
        silent_days = 0
        for day in sorted(builder.crash_days):
            day_slots = range(MERGE_SLOT + day * bpd, MERGE_SLOT + (day + 1) * bpd)
            submitted = any(
                rec.builder_pubkey in pubkeys and rec.slot in day_slots
                for relay in world.relays.values()
                for rec in relay.data.get_builder_blocks_received()
            )
            if not submitted:
                silent_days += 1
        if silent_days:
            found.append(
                DetectedAnomaly(
                    kind=FAULT_BUILDER_CRASH,
                    target=builder.name,
                    metric=float(silent_days),
                    evidence=(
                        f"{builder.name} submitted nothing to any relay on "
                        f"{silent_days} crash day(s)"
                    ),
                )
            )
    return found


def _sanctions_lags(report: OracleReport) -> list[DetectedAnomaly]:
    """Stale-OFAC leaks the sanctions oracle attributed, per relay."""
    counts: dict[str, int] = {}
    for finding in report.anomalies:
        kind, target = finding.attributed_to
        if kind == KIND_SANCTIONS_LAG:
            counts[target] = counts.get(target, 0) + 1
    return [
        DetectedAnomaly(
            kind=FAULT_SANCTIONS_LAG,
            target=relay,
            metric=float(count),
            evidence=(
                f"{count} sanctioned tx(s) through {relay} only its stale "
                "OFAC copy missed"
            ),
        )
        for relay, count in counts.items()
    ]


def _epbs_faults(world) -> list[DetectedAnomaly]:
    """ePBS consensus-layer anomalies read from the builder ledger.

    Slashings are attributed to the offending builder by reason —
    withheld payloads and collateralised bid reneging — and PTC
    equivocations aggregate to the committee as a whole, since the
    committee is sampled fresh per slot.
    """
    ledger = getattr(world, "epbs_ledger", None)
    if ledger is None:
        return []
    found: list[DetectedAnomaly] = []
    reason_kinds = {
        SLASH_REASON_WITHHELD: FAULT_WITHHELD_PAYLOAD,
        SLASH_REASON_RENEGING: FAULT_BID_RENEGING,
    }
    counts: dict[tuple[str, str], int] = {}
    for slashing in ledger.slashings:
        kind = reason_kinds.get(slashing.reason)
        if kind is None:  # pragma: no cover - only two reasons exist today
            continue
        key = (kind, slashing.builder)
        counts[key] = counts.get(key, 0) + 1
    for (kind, builder), count in sorted(counts.items()):
        found.append(
            DetectedAnomaly(
                kind=kind,
                target=builder,
                metric=float(count),
                evidence=(
                    f"{builder} slashed {count} time(s) for "
                    f"{'withholding a payload' if kind == FAULT_WITHHELD_PAYLOAD else 'reneging on its bid'}"
                ),
            )
        )
    equivocations = sum(rec.ptc_equivocations for rec in ledger.slots)
    if equivocations:
        found.append(
            DetectedAnomaly(
                kind=FAULT_PTC_EQUIVOCATION,
                target="committee",
                metric=float(equivocations),
                evidence=(
                    f"{equivocations} payload-timeliness votes equivocated "
                    "across the run"
                ),
            )
        )
    return found


def detect_anomalies(
    world,
    dataset: StudyDataset | None = None,
    report: OracleReport | None = None,
) -> dict[tuple[str, str], DetectedAnomaly]:
    """All anomalies detectable from a finished run, keyed by (kind, target).

    This is the "analysis layer saw it" half of scenario verification:
    gross overpromise scans mirror Table 4's promised-vs-delivered gap,
    filter-miss counts mirror the bloXroute sandwich count, sanctions
    lags come from the screening oracle, and drop/crash detectors read
    the relay data APIs.
    """
    if dataset is None:
        dataset = collect_study_dataset(world)
    if report is None:
        report = run_oracles(world, dataset)
    detected: list[DetectedAnomaly] = []
    detected.extend(_gross_overpromises(world, dataset))
    detected.extend(_filter_misses(world, dataset))
    detected.extend(_dropped_payloads(world))
    detected.extend(_builder_crashes(world))
    detected.extend(_sanctions_lags(report))
    detected.extend(_epbs_faults(world))
    return {(a.kind, a.target): a for a in detected}


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class RunArtifacts:
    """Everything one seeded run yields for verification."""

    world: Any
    dataset: StudyDataset
    report: OracleReport
    anomalies: dict[tuple[str, str], DetectedAnomaly]
    digest: str


@dataclass
class ScenarioResult:
    """A scenario's perturbed run next to its unperturbed baseline."""

    scenario: Scenario
    baseline: RunArtifacts
    perturbed: RunArtifacts

    def problems(self) -> list[str]:
        """Every way this scenario failed exact detection (empty = pass)."""
        problems: list[str] = []
        if self.baseline.report.violations:
            problems.append(
                f"baseline run has {len(self.baseline.report.violations)} "
                "oracle violation(s) — the clean seed must be clean"
            )
        if self.perturbed.report.violations:
            problems.append(
                f"perturbed run has {len(self.perturbed.report.violations)} "
                "oracle violation(s) — injected faults must be attributable: "
                + "; ".join(
                    f.message for f in self.perturbed.report.violations[:3]
                )
            )
        expected = self.scenario.expected_keys()
        baseline_keys = set(self.baseline.anomalies)
        perturbed_keys = set(self.perturbed.anomalies)
        for key in sorted(expected):
            if key not in perturbed_keys:
                problems.append(f"expected anomaly {key} was not detected")
            elif key in baseline_keys:
                before = self.baseline.anomalies[key].metric
                after = self.perturbed.anomalies[key].metric
                if after <= before:
                    problems.append(
                        f"anomaly {key} metric did not increase "
                        f"({before} -> {after})"
                    )
        unexpected = (perturbed_keys - baseline_keys) - expected
        for key in sorted(unexpected):
            problems.append(
                f"unexpected anomaly {key}: "
                f"{self.perturbed.anomalies[key].evidence}"
            )
        return problems

    @property
    def ok(self) -> bool:
        return not self.problems()

    def assert_detected(self) -> None:
        problems = self.problems()
        if problems:
            raise ScenarioError(
                f"scenario {self.scenario.name!r} failed exact detection:\n"
                + "\n".join(f"- {p}" for p in problems)
            )


class ScenarioRunner:
    """Runs scenarios against cached unperturbed baselines.

    Baselines are keyed by the config content hash, so scenarios sharing
    the same overrides (usually none) share one clean run.
    """

    def __init__(self, base_config: SimulationConfig | None = None) -> None:
        self.base_config = base_config or small_test_config()
        self._baselines: dict[str, RunArtifacts] = {}

    def config_for(self, scenario: Scenario) -> SimulationConfig:
        if not scenario.config_overrides:
            return self.base_config
        return self.base_config.with_overrides(**scenario.config_overrides)

    def _execute(
        self, config: SimulationConfig, faults: tuple[FaultSpec, ...] = ()
    ) -> RunArtifacts:
        world = build_world(config)
        for spec in faults:
            apply_fault(world, spec)
        world.run()
        dataset = collect_study_dataset(world)
        report = run_oracles(world, dataset)
        anomalies = detect_anomalies(world, dataset, report)
        return RunArtifacts(
            world=world,
            dataset=dataset,
            report=report,
            anomalies=anomalies,
            digest=world.digest(),
        )

    def baseline_for(self, config: SimulationConfig) -> RunArtifacts:
        key = config_content_hash(config)
        if key not in self._baselines:
            self._baselines[key] = self._execute(config)
        return self._baselines[key]

    def seed_baseline(self, config: SimulationConfig, artifacts: RunArtifacts) -> None:
        """Pre-register a baseline (e.g. a session-scoped fixture world)."""
        self._baselines[config_content_hash(config)] = artifacts

    def run(self, scenario: Scenario) -> ScenarioResult:
        config = self.config_for(scenario)
        baseline = self.baseline_for(config)
        perturbed = self._execute(config, scenario.faults)
        return ScenarioResult(
            scenario=scenario, baseline=baseline, perturbed=perturbed
        )


def default_scenarios() -> list[Scenario]:
    """The standard six-fault matrix over the small test world.

    Fault days sit late in the 12-day window (relay menus only open up
    from day 8, and the seeded incident days all lie outside it).  The
    clean baseline carries no detection keys except the always-on
    bloXroute filter misses, whose metric the collapse scenario must
    strictly raise.
    """
    return [
        Scenario(
            name="manifold-style-validation-outage",
            description=(
                "A relay stops validating payments for a day while a "
                "builder submits exploit-grade claims to it — the "
                "2022-10-15 Manifold incident shape."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_VALIDATION_OUTAGE,
                    target="Manifold",
                    day=10,
                    builder="Builder 3",
                    claim_eth=2.0,
                ),
            ),
        ),
        Scenario(
            name="eden-style-internal-mispromise",
            description=(
                "A relay's own unvalidated builder promises far more than "
                "it pays — the 278-ETH Eden mispromise shape."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_INTERNAL_MISPROMISE,
                    target="Eden",
                    day=10,
                    builder="Eden",
                    claim_eth=2.0,
                ),
            ),
        ),
        Scenario(
            name="bloxroute-style-filter-collapse",
            description=(
                "The announced front-running filter misses everything; "
                "sandwich submissions accepted by the relay must rise."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_MEV_FILTER_MISS,
                    target="bloXroute (E)",
                    rate=1.0,
                ),
            ),
        ),
        Scenario(
            name="stale-ofac-copy",
            description=(
                "A compliant relay's sanctions list lags three months; "
                "sanctioned flow leaks through it — the Flashbots "
                "February-2023 lag shape."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_SANCTIONS_LAG,
                    target="Flashbots",
                    lag_days=90,
                ),
            ),
            config_overrides={"sanctioned_tx_rate": 0.5, "blocks_per_day": 16},
        ),
        Scenario(
            name="payload-drop-day",
            description=(
                "Every relay loses its escrowed payloads for a day after "
                "serving headers; signed slots must fall back to local "
                "production."
            ),
            faults=(
                FaultSpec(kind=FAULT_DROPPED_PAYLOAD, target="*", day=9),
            ),
        ),
        Scenario(
            name="builder-crash-mid-window",
            description=(
                "A major builder goes dark for a day; its submissions "
                "vanish from every relay's data API."
            ),
            faults=(
                FaultSpec(kind=FAULT_BUILDER_CRASH, target="Builder 1", day=9),
            ),
        ),
        Scenario(
            name="epbs-withheld-payload",
            description=(
                "A staked builder wins the commit phase with an inflated "
                "bid, then never reveals; the protocol charges the bid "
                "from escrow and slashes the builder's collateral."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_WITHHELD_PAYLOAD,
                    target="Builder 1",
                    day=9,
                    claim_eth=2.0,
                ),
            ),
            config_overrides={"regime": "epbs"},
        ),
        Scenario(
            name="epbs-bid-reneging",
            description=(
                "A staked builder commits to an exploit-grade bid its "
                "payload cannot pay; settlement draws the shortfall from "
                "collateral and slashes the gross reneger."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_BID_RENEGING,
                    target="Builder 3",
                    day=9,
                    claim_eth=2.0,
                ),
            ),
            config_overrides={"regime": "epbs"},
        ),
        Scenario(
            name="epbs-ptc-equivocation",
            description=(
                "The payload-timeliness committee equivocates wholesale "
                "for a day; reveals lose quorum and slots go empty with "
                "unconditional payment."
            ),
            faults=(
                FaultSpec(
                    kind=FAULT_PTC_EQUIVOCATION,
                    target="committee",
                    day=10,
                    rate=1.0,
                ),
            ),
            config_overrides={"regime": "epbs"},
        ),
    ]
