"""Tests for the builder-relay connectivity analysis."""

import pytest

from repro.analysis.network_structure import (
    builder_relay_graph,
    connectivity_report,
    relay_overlap_matrix,
)
from repro.errors import AnalysisError


class TestGraph:
    def test_bipartite_structure(self, small_dataset):
        graph = builder_relay_graph(small_dataset)
        for left, right in graph.edges():
            kinds = {left[0], right[0]}
            assert kinds == {"builder", "relay"}

    def test_edge_weights_positive(self, small_dataset):
        graph = builder_relay_graph(small_dataset)
        for _, _, data in graph.edges(data=True):
            assert data["weight"] >= 1

    def test_accepted_only_filter(self, small_dataset):
        all_edges = builder_relay_graph(small_dataset, accepted_only=False)
        accepted = builder_relay_graph(small_dataset, accepted_only=True)
        total_all = sum(d["weight"] for _, _, d in all_edges.edges(data=True))
        total_accepted = sum(
            d["weight"] for _, _, d in accepted.edges(data=True)
        )
        assert total_all >= total_accepted


class TestReport:
    def test_report_consistency(self, small_dataset):
        report = connectivity_report(small_dataset)
        assert report.builders > 0
        assert 0 < report.relays <= 11
        assert report.edges >= max(report.builders, report.relays) - 1
        assert report.mean_relays_per_builder >= 1.0
        assert report.mean_builders_per_relay >= 1.0
        assert 0 <= report.single_relay_builders <= report.builders
        assert 0 < report.largest_relay_dependency <= 1.0

    def test_internal_builders_single_homed(self, small_dataset):
        # Internal relay builders (Flashbots, blocknative, Eden, the
        # bloXroute trio) submit only to their own relay, so single-relay
        # builders must exist.
        report = connectivity_report(small_dataset)
        assert report.single_relay_builders >= 1

    def test_empty_dataset_rejected(self, small_dataset):
        import copy

        empty = copy.copy(small_dataset)
        empty.relays = {}
        with pytest.raises(AnalysisError):
            connectivity_report(empty)


class TestOverlap:
    def test_overlap_bounds(self, small_dataset):
        overlaps = relay_overlap_matrix(small_dataset)
        for (left, right), value in overlaps.items():
            assert left < right  # canonical ordering, no duplicates
            assert 0.0 <= value <= 1.0

    def test_internal_relays_disjoint(self, small_dataset):
        overlaps = relay_overlap_matrix(small_dataset)
        # Blocknative and Eden only carry their own internal builder, so
        # their mutual overlap must be zero when both appear.
        value = overlaps.get(("Blocknative", "Eden"))
        if value is not None:
            assert value == 0.0
