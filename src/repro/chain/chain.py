"""Canonical chain storage.

Holds the ordered sequence of blocks plus, per block, the execution
artefacts (receipts and traces) the measurement pipeline reads — the role
Erigon plays in the paper's data collection.
"""

from __future__ import annotations

import hashlib
from typing import Iterator

from ..constants import INITIAL_BASE_FEE_WEI, MAX_BLOCK_GAS
from ..errors import ChainError
from ..types import Hash, Wei
from .block import Block
from .execution import BlockExecutionResult
from .fee_market import next_base_fee

GENESIS_PARENT_HASH: Hash = "0x" + "0" * 64


class Chain:
    """Append-only canonical chain with per-block execution artefacts."""

    def __init__(
        self,
        first_block_number: int = 0,
        initial_base_fee: Wei = INITIAL_BASE_FEE_WEI,
    ) -> None:
        self._first_block_number = first_block_number
        self._initial_base_fee = initial_base_fee
        self._blocks: list[Block] = []
        self._results: dict[Hash, BlockExecutionResult] = {}
        self._by_hash: dict[Hash, Block] = {}

    # -- chain growth ----------------------------------------------------

    @property
    def head(self) -> Block | None:
        return self._blocks[-1] if self._blocks else None

    @property
    def next_block_number(self) -> int:
        head = self.head
        return self._first_block_number if head is None else head.number + 1

    @property
    def parent_hash(self) -> Hash:
        head = self.head
        return GENESIS_PARENT_HASH if head is None else head.block_hash

    def next_base_fee(self) -> Wei:
        """Base fee the next block must use, per EIP-1559."""
        head = self.head
        if head is None:
            return self._initial_base_fee
        return next_base_fee(
            head.header.base_fee_per_gas,
            head.header.gas_used,
            head.header.gas_limit,
        )

    def append(self, block: Block, result: BlockExecutionResult) -> None:
        """Append a block and its execution result to the canonical chain."""
        if block.number != self.next_block_number:
            raise ChainError(
                f"expected block {self.next_block_number}, got {block.number}"
            )
        if block.header.parent_hash != self.parent_hash:
            raise ChainError(
                f"block {block.number} parent hash mismatch: "
                f"{block.header.parent_hash} != {self.parent_hash}"
            )
        if block.header.gas_used > block.header.gas_limit:
            raise ChainError(f"block {block.number} exceeds its gas limit")
        if block.header.gas_limit > MAX_BLOCK_GAS:
            raise ChainError(f"block {block.number} gas limit above protocol max")
        self._blocks.append(block)
        self._by_hash[block.block_hash] = block
        self._results[block.block_hash] = result

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self) -> Iterator[Block]:
        return iter(self._blocks)

    def block_by_number(self, number: int) -> Block:
        index = number - self._first_block_number
        if index < 0 or index >= len(self._blocks):
            raise ChainError(f"unknown block number {number}")
        return self._blocks[index]

    def block_by_hash(self, block_hash: Hash) -> Block:
        try:
            return self._by_hash[block_hash]
        except KeyError:
            raise ChainError(f"unknown block hash {block_hash}") from None

    def has_block(self, block_hash: Hash) -> bool:
        return block_hash in self._by_hash

    def execution_result(self, block_hash: Hash) -> BlockExecutionResult:
        try:
            return self._results[block_hash]
        except KeyError:
            raise ChainError(f"no execution result for {block_hash}") from None

    # -- integrity ---------------------------------------------------------

    def digest(self) -> str:
        """A stable hex digest over every block and execution artefact.

        Covers block hashes (and hence headers plus transaction ordering)
        as well as receipts, logs, traces and fee accounting, so any
        divergence in execution — not just in block structure — changes
        the digest.  The determinism regression tests compare digests
        across runs and worker counts.
        """
        hasher = hashlib.sha256()
        for block in self._blocks:
            hasher.update(block.block_hash.encode())
            result = self._results[block.block_hash]
            for outcome in result.outcomes:
                receipt = outcome.receipt
                hasher.update(
                    f"{receipt.tx_hash}|{receipt.tx_index}|{receipt.status}|"
                    f"{receipt.gas_used}|{receipt.effective_gas_price}".encode()
                )
                for log in receipt.logs:
                    hasher.update(repr(log).encode())
                for frame in outcome.trace.frames:
                    hasher.update(repr(frame).encode())
                hasher.update(
                    f"{outcome.burned_wei}|{outcome.priority_fee_wei}|"
                    f"{outcome.direct_tip_wei}".encode()
                )
            hasher.update(
                f"{result.gas_used}|{result.burned_wei}|"
                f"{result.priority_fees_wei}|{len(result.dropped)}".encode()
            )
        return hasher.hexdigest()

    # -- aggregate stats used by dataset collection ------------------------

    def total_transactions(self) -> int:
        return sum(len(block.transactions) for block in self._blocks)

    def total_logs(self) -> int:
        return sum(
            len(receipt.logs)
            for result in self._results.values()
            for receipt in result.receipts
        )

    def total_trace_frames(self) -> int:
        return sum(
            len(trace.frames)
            for result in self._results.values()
            for trace in result.traces
        )
