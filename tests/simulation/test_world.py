"""Tests for the world simulator over the small session world."""

import pytest

from repro.constants import MERGE_BLOCK_NUMBER
from repro.simulation import build_world
from repro.simulation.config import small_test_config


class TestWorldStructure:
    def test_chain_grows(self, small_world):
        assert len(small_world.chain) > 0
        assert small_world.chain.block_by_number(MERGE_BLOCK_NUMBER)

    def test_beacon_covers_all_slots(self, small_world):
        config = small_world.config
        assert len(small_world.beacon) == config.total_slots

    def test_missed_slots_have_no_blocks(self, small_world):
        missed = small_world.beacon.missed_count()
        proposed = len(small_world.beacon.proposed())
        assert missed + proposed == len(small_world.beacon)
        assert proposed == len(small_world.chain)

    def test_block_numbers_contiguous(self, small_world):
        numbers = [block.number for block in small_world.chain]
        assert numbers == list(
            range(MERGE_BLOCK_NUMBER, MERGE_BLOCK_NUMBER + len(numbers))
        )

    def test_parent_hashes_chain(self, small_world):
        blocks = list(small_world.chain)
        for parent, child in zip(blocks, blocks[1:]):
            assert child.header.parent_hash == parent.block_hash

    def test_slot_records_align_with_chain(self, small_world):
        assert len(small_world.slot_records) == len(small_world.chain)
        for record in small_world.slot_records:
            block = small_world.chain.block_by_number(record.block_number)
            assert block.header.slot == record.slot


class TestConservation:
    def test_eth_supply_conserved(self, small_world):
        state = small_world.state
        assert state.total_supply() == state.minted_wei - state.burned_wei

    def test_base_fee_positive(self, small_world):
        for block in small_world.chain:
            assert block.header.base_fee_per_gas > 0

    def test_gas_within_limits(self, small_world):
        for block in small_world.chain:
            assert 0 <= block.header.gas_used <= block.header.gas_limit


class TestPBSActivity:
    def test_both_modes_present(self, small_world):
        modes = {record.mode for record in small_world.slot_records}
        assert "pbs" in modes
        assert "local" in modes

    def test_pbs_blocks_carry_payment(self, small_world):
        for record in small_world.slot_records:
            if record.mode != "pbs":
                continue
            block = small_world.chain.block_by_number(record.block_number)
            proposer = small_world.validators.by_index(
                small_world.beacon.by_slot(record.slot).proposer_index
            )
            if block.fee_recipient == proposer.fee_recipient:
                continue  # builder paid via the fee recipient field
            last = block.last_transaction
            assert last is not None
            assert last.sender == block.fee_recipient

    def test_relays_recorded_deliveries(self, small_world):
        total = sum(
            len(relay.data.get_payloads_delivered())
            for relay in small_world.relays.values()
        )
        pbs_count = sum(1 for r in small_world.slot_records if r.mode == "pbs")
        assert total >= pbs_count  # multi-relay blocks can exceed

    def test_local_blocks_have_proposer_fee_recipient(self, small_world):
        for record in small_world.slot_records:
            if record.mode == "pbs":
                continue
            block = small_world.chain.block_by_number(record.block_number)
            proposer = small_world.validators.by_index(
                small_world.beacon.by_slot(record.slot).proposer_index
            )
            assert block.fee_recipient == proposer.fee_recipient


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = small_test_config(num_days=3, blocks_per_day=4)
        a = build_world(config).run()
        b = build_world(config).run()
        hashes_a = [block.block_hash for block in a.chain]
        hashes_b = [block.block_hash for block in b.chain]
        assert hashes_a == hashes_b
        assert [r.mode for r in a.slot_records] == [
            r.mode for r in b.slot_records
        ]
        assert [r.payment_wei for r in a.slot_records] == [
            r.payment_wei for r in b.slot_records
        ]

    def test_different_seed_different_world(self):
        a = build_world(small_test_config(num_days=3, blocks_per_day=4, seed=1)).run()
        b = build_world(small_test_config(num_days=3, blocks_per_day=4, seed=2)).run()
        assert [blk.block_hash for blk in a.chain] != [
            blk.block_hash for blk in b.chain
        ]

    def test_run_idempotent(self, small_world):
        blocks_before = len(small_world.chain)
        small_world.run()  # second call is a no-op
        assert len(small_world.chain) == blocks_before
