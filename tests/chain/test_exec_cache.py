"""Unit tests for the shared per-slot execution cache.

The cache is a drop-in replacement for ``engine.execute_transaction``:
every test here checks the replay path against direct execution — same
state writes, same outcome objects, same raised errors — plus the
hit/miss bookkeeping the bench reports.
"""

from __future__ import annotations

import pytest

from repro.chain.exec_cache import ExecutionCache
from repro.chain.execution import ExecutionContext, ExecutionEngine, NullProtocols
from repro.chain.state import WorldState
from repro.chain.transaction import (
    EthTransfer,
    SwapExact,
    TipCoinbase,
    TransactionFactory,
)
from repro.defi.oracle import PriceOracle
from repro.defi.registry import DefiProtocols
from repro.errors import ExecutionError
from repro.types import derive_address, ether, gwei

ALICE = derive_address("cache", "alice")
BOB = derive_address("cache", "bob")
BUILDER_A = derive_address("cache", "builder-a")
BUILDER_B = derive_address("cache", "builder-b")
BASE_FEE = gwei(10)


@pytest.fixture
def canonical():
    state = WorldState()
    state.mint(ALICE, ether(10))
    return ExecutionContext(state=state, protocols=NullProtocols())


@pytest.fixture
def engine():
    return ExecutionEngine()


@pytest.fixture
def cache():
    return ExecutionCache()


@pytest.fixture
def factory():
    return TransactionFactory()


def _transfer_tx(factory, value=ether(1), max_fee=gwei(20), priority=gwei(2)):
    return factory.create(ALICE, 0, [EthTransfer(BOB, value)], max_fee, priority)


def _assert_same_effects(ctx_a, ctx_b, addresses=(ALICE, BOB, BUILDER_A)):
    for address in addresses:
        assert ctx_a.state.balance_of(address) == ctx_b.state.balance_of(address)
        assert ctx_a.state.nonce_of(address) == ctx_b.state.nonce_of(address)
    assert ctx_a.state.burned_wei == ctx_b.state.burned_wei
    assert ctx_a.state.minted_wei == ctx_b.state.minted_wei


class TestHitMissSemantics:
    def test_first_execution_is_a_miss_then_hits(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)
        assert cache.stats.hit_rate == 0.5

    def test_replay_matches_direct_execution(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)

        replayed = canonical.fork()
        direct = canonical.fork()
        hit_outcome = cache.execute(engine, tx, replayed, BASE_FEE, BUILDER_A)
        direct_outcome = engine.execute_transaction(
            tx, direct, BASE_FEE, BUILDER_A
        )
        assert hit_outcome == direct_outcome
        _assert_same_effects(replayed, direct)

    def test_state_mismatch_records_second_variant(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)

        richer = canonical.fork()
        richer.state.mint(ALICE, ether(1))  # sender balance read differs
        cache.execute(engine, tx, richer, BASE_FEE, BUILDER_A)
        assert cache.stats.misses == 2
        assert cache.variant_count(tx.tx_hash) == 2

    def test_fee_recipient_is_parametrized(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)

        fork = canonical.fork()
        outcome = cache.execute(engine, tx, fork, BASE_FEE, BUILDER_B)
        assert cache.stats.hits == 1
        assert fork.state.balance_of(BUILDER_B) == outcome.priority_fee_wei
        assert fork.state.balance_of(BUILDER_A) == 0

    def test_tx_index_rebinding(self, cache, engine, canonical, factory):
        tx = _transfer_tx(factory)
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A, tx_index=0)
        outcome = cache.execute(
            engine, tx, canonical.fork(), BASE_FEE, BUILDER_A, tx_index=5
        )
        assert outcome.receipt.tx_index == 5

    def test_coinbase_tip_frames_rebound(self, cache, engine, canonical, factory):
        tx = factory.create(ALICE, 0, [TipCoinbase(ether(1))], gwei(20), gwei(1))
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)
        outcome = cache.execute(
            engine, tx, canonical.fork(), BASE_FEE, BUILDER_B
        )
        assert outcome.direct_tip_wei == ether(1)
        assert outcome.trace.frames[0].recipient == BUILDER_B


class TestErrorCaching:
    def test_ineligible_fee_cap_raises_on_hit_and_miss(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory, max_fee=gwei(5), priority=gwei(1))
        for _ in range(2):
            with pytest.raises(ExecutionError):
                cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_broke_sender_raises_like_direct_execution(
        self, cache, engine, factory
    ):
        broke = ExecutionContext(state=WorldState(), protocols=NullProtocols())
        tx = _transfer_tx(factory)
        with pytest.raises(ExecutionError) as cached_err:
            cache.execute(engine, tx, broke.fork(), BASE_FEE, BUILDER_A)
        with pytest.raises(ExecutionError) as direct_err:
            engine.execute_transaction(tx, broke.fork(), BASE_FEE, BUILDER_A)
        assert str(cached_err.value) == str(direct_err.value)


class TestFailedActions:
    def test_failed_transfer_replay_matches_direct(
        self, cache, engine, canonical, factory
    ):
        tx = _transfer_tx(factory, value=ether(100))  # more than the balance
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)

        replayed = canonical.fork()
        direct = canonical.fork()
        hit_outcome = cache.execute(engine, tx, replayed, BASE_FEE, BUILDER_A)
        direct_outcome = engine.execute_transaction(
            tx, direct, BASE_FEE, BUILDER_A
        )
        assert not hit_outcome.success
        assert hit_outcome == direct_outcome
        _assert_same_effects(replayed, direct)

    def test_multi_action_failure_charges_fee_only(
        self, cache, engine, canonical, factory
    ):
        actions = [EthTransfer(BOB, ether(1)), EthTransfer(BOB, ether(100))]
        tx = factory.create(ALICE, 0, actions, gwei(20), gwei(2))
        cache.execute(engine, tx, canonical.fork(), BASE_FEE, BUILDER_A)

        replayed = canonical.fork()
        direct = canonical.fork()
        hit_outcome = cache.execute(engine, tx, replayed, BASE_FEE, BUILDER_A)
        direct_outcome = engine.execute_transaction(
            tx, direct, BASE_FEE, BUILDER_A
        )
        assert not hit_outcome.success
        assert hit_outcome == direct_outcome
        assert replayed.state.balance_of(BOB) == 0  # fully reverted
        _assert_same_effects(replayed, direct)


class TestProtocolWrites:
    @pytest.fixture
    def defi_canonical(self):
        protocols = DefiProtocols.create(
            PriceOracle({"WETH": 2000.0, "USDC": 1.0})
        )
        protocols.tokens.deploy("WETH")
        protocols.tokens.deploy("USDC", 6)
        protocols.amm.register_pool(
            "WETH", "USDC", ether(100), 200_000 * 10**6, pool_id="pool"
        )
        protocols.tokens.mint("WETH", ALICE, ether(5))
        state = WorldState()
        state.mint(ALICE, ether(10))
        return ExecutionContext(state=state, protocols=protocols)

    def test_swap_replay_matches_direct(
        self, cache, engine, defi_canonical, factory
    ):
        tx = factory.create(
            ALICE,
            0,
            [SwapExact("pool", "WETH", ether(1), 0)],
            gwei(20),
            gwei(2),
        )
        cache.execute(engine, tx, defi_canonical.fork(), BASE_FEE, BUILDER_A)

        replayed = defi_canonical.fork()
        direct = defi_canonical.fork()
        hit_outcome = cache.execute(engine, tx, replayed, BASE_FEE, BUILDER_A)
        direct_outcome = engine.execute_transaction(
            tx, direct, BASE_FEE, BUILDER_A
        )
        assert cache.stats.hits == 1
        assert hit_outcome == direct_outcome
        assert (
            replayed.protocols.reserves_view().get("pool")
            == direct.protocols.reserves_view().get("pool")
        )
        assert replayed.protocols.balances_view().get(
            ("USDC", ALICE)
        ) == direct.protocols.balances_view().get(("USDC", ALICE))
        _assert_same_effects(replayed, direct)

    def test_reserve_change_invalidates_variant(
        self, cache, engine, defi_canonical, factory
    ):
        tx = factory.create(
            ALICE,
            0,
            [SwapExact("pool", "WETH", ether(1), 0)],
            gwei(20),
            gwei(2),
        )
        cache.execute(engine, tx, defi_canonical.fork(), BASE_FEE, BUILDER_A)

        moved = defi_canonical.fork()
        # Another swap moves the pool price, so the cached reserve read no
        # longer matches and a fresh variant must be recorded.
        moved.protocols.tokens.mint("WETH", BOB, ether(1))
        moved.protocols.amm.swap(
            "pool", BOB, "WETH", ether(1), 0, moved.protocols.tokens
        )
        cache.execute(engine, tx, moved, BASE_FEE, BUILDER_A)
        assert cache.stats.misses == 2
        assert cache.variant_count(tx.tx_hash) == 2
